// Command gcopsslint runs the repository's invariant checkers over Go
// package patterns and exits non-zero if any diagnostic fires.
//
//	gcopsslint ./...                  # everything, tests included
//	gcopsslint -tests=false ./...     # production code only
//	gcopsslint -checks nopanic,cdctor ./internal/wire
//	gcopsslint -json ./...            # machine-readable diagnostics (CI artifact)
//	gcopsslint -audit ./...           # list every //lint:allow waiver
//
// Checkers (see internal/analysis/* and DESIGN.md "Machine-checked
// invariants"):
//
//	clockfree        no time.Now/Since in the deterministic core
//	randinject       no global math/rand outside package main
//	nopanic          no panic in packet-handling packages
//	cdctor           CDs built only via the cd package's constructors
//	errcheckedfaces  wire/transport errors must be handled
//	obsnames         telemetry metric names are literal and well-formed
//	sharedpkt        handler-received packets are immutable; mutate via COW copies
//	maporder         map iteration order must not reach the event stream
//	hotalloc         //gcopss:hotpath functions must not allocate (transitively)
//	guardedby        //gcopss:guardedby fields only accessed with their mutex held
//
// Packages are analyzed in dependency order with a shared fact store, so the
// interprocedural checkers (maporder, hotalloc, guardedby) see summaries of
// every already-analyzed dependency.
//
// A finding is waived in place with `//lint:allow <checker> <reason>` on the
// flagged line or the line above it; for maporder/hotalloc/guardedby the
// reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"github.com/icn-gaming/gcopss/internal/analysis"
	"github.com/icn-gaming/gcopss/internal/analysis/cdctor"
	"github.com/icn-gaming/gcopss/internal/analysis/clockfree"
	"github.com/icn-gaming/gcopss/internal/analysis/errcheckedfaces"
	"github.com/icn-gaming/gcopss/internal/analysis/guardedby"
	"github.com/icn-gaming/gcopss/internal/analysis/hotalloc"
	"github.com/icn-gaming/gcopss/internal/analysis/load"
	"github.com/icn-gaming/gcopss/internal/analysis/maporder"
	"github.com/icn-gaming/gcopss/internal/analysis/nopanic"
	"github.com/icn-gaming/gcopss/internal/analysis/obsnames"
	"github.com/icn-gaming/gcopss/internal/analysis/randinject"
	"github.com/icn-gaming/gcopss/internal/analysis/sharedpkt"
)

var all = []*analysis.Analyzer{
	clockfree.Analyzer,
	randinject.Analyzer,
	nopanic.Analyzer,
	cdctor.Analyzer,
	errcheckedfaces.Analyzer,
	obsnames.Analyzer,
	sharedpkt.Analyzer,
	maporder.Analyzer,
	hotalloc.Analyzer,
	guardedby.Analyzer,
}

func main() {
	os.Exit(run())
}

// diagJSON is one finding in -json output.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run() int {
	var (
		tests    = flag.Bool("tests", true, "also lint test files")
		checks   = flag.String("checks", "", "comma-separated subset of checkers to run (default: all)")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		auditOut = flag.Bool("audit", false, "list every //lint:allow waiver with file:line and reason, then exit 0")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: gcopsslint [flags] [packages]\n\nflags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\ncheckers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcopsslint:", err)
		return 2
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Packages(".", *tests, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gcopsslint:", err)
		return 2
	}

	if *auditOut {
		audit(pkgs)
		return 0
	}

	// Packages arrive in dependency order from the loader; one shared fact
	// store lets importing packages consume their dependencies' summaries.
	facts := analysis.NewFactStore()
	var diags []diagJSON
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			found, err := analysis.RunUnitFacts(a, pkg.Unit, facts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gcopsslint:", err)
				return 2
			}
			for _, d := range found {
				pos := pkg.Unit.Fset.Position(d.Pos)
				diags = append(diags, diagJSON{
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []diagJSON{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "gcopsslint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gcopsslint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// audit prints every //lint:allow waiver in the loaded packages, with its
// position, the waived checkers and the stated reason, so waived invariants
// stay greppable and reviewable.
func audit(pkgs []*load.Package) {
	type waiver struct {
		pos    token.Position
		names  []string
		reason string
	}
	var waivers []waiver
	for _, pkg := range pkgs {
		for _, f := range pkg.Unit.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, reason, ok := analysis.ParseAllow(c.Text)
					if !ok {
						continue
					}
					waivers = append(waivers, waiver{pkg.Unit.Fset.Position(c.Pos()), names, reason})
				}
			}
		}
	}
	sort.Slice(waivers, func(i, j int) bool {
		a, b := waivers[i], waivers[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	for _, w := range waivers {
		reason := w.reason
		if reason == "" {
			reason = "(no reason given)"
		}
		fmt.Printf("%s:%d: %s: %s\n", w.pos.Filename, w.pos.Line, strings.Join(w.names, ","), reason)
	}
	fmt.Fprintf(os.Stderr, "gcopsslint: %d waiver(s)\n", len(waivers))
}

func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown checker %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
