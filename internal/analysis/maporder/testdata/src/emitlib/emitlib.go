// Package emitlib exists to exercise the cross-package fact path: it exports
// functions that reach the event stream, and the ranger testdata package
// calls them from map ranges. It is listed before ranger in the test so its
// facts are available (the dependency-order contract).
package emitlib

import (
	"internal/ndn"
	"internal/wire"
)

// Deliver emits one action.
func Deliver(sink ndn.ActionSink, a ndn.Action) {
	sink.Emit(a)
}

// Chain reaches the sink through another exported function.
func Chain(sink ndn.ActionSink, a ndn.Action) {
	Deliver(sink, a)
}

// Frame writes a wire frame.
func Frame(dst []byte, p *wire.Packet) []byte {
	out, _ := wire.AppendEncode(dst, p)
	return out
}

// Pure does not touch the event stream.
func Pure(n int) int { return n * 2 }
