package core

import (
	"reflect"
	"sort"
	"testing"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/gamemap"
	"github.com/icn-gaming/gcopss/internal/ndn"
)

// TestArbitraryDepthHierarchy exercises the paper's claim that "G-COPSS in
// fact allows map designers to divide the map into arbitrary layers": a
// four-layer map (world → regions → zones → rooms) with players at every
// altitude, end to end through real routers, with the RPs serving a
// prefix-free partition that cuts across layers.
func TestArbitraryDepthHierarchy(t *testing.T) {
	m, err := gamemap.NewGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	z11, _ := m.Area(cd.MustParse("/1/1"))
	for _, room := range []string{"a", "b"} {
		if _, err := m.AddSubArea(z11, room); err != nil {
			t.Fatal(err)
		}
	}
	m.Freeze()

	h := newHarness(t)
	h.addRouter("R1")
	h.addRouter("R2")
	h.connect("R1", 1, "R2", 1)

	// Prefix-free partition cutting across layers: rp1 serves the deep
	// subtree /1/1 (with its rooms), rp2 the rest.
	a1, err := h.routers["R1"].BecomeRP(copss.RPInfo{
		Name:     "/rp1",
		Prefixes: []cd.CD{cd.MustParse("/1/1")},
		Seq:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.enqueueActions("R1", a1)
	h.run()
	a2, err := h.routers["R2"].BecomeRP(copss.RPInfo{
		Name:     "/rp2",
		Prefixes: []cd.CD{cd.MustNew(""), cd.MustParse("/1/2"), cd.MustParse("/1/"), cd.MustParse("/2")},
		Seq:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.enqueueActions("R2", a2)
	h.run()

	// Players at four altitudes.
	players := map[string]string{ // name → area node CD
		"roomer":    "/1/1/a", // in a room (layer 4)
		"zoner":     "/1/1",   // hovering over zone 1/1's rooms (layer 3)
		"plane":     "/1",     // over region 1 (layer 2)
		"satellite": "",       // the world (layer 1)
		"neighbor":  "/1/1/b", // the adjacent room
	}
	nextFace := ndn.FaceID(30)
	for name, areaKey := range players {
		router := "R1"
		if name == "plane" || name == "satellite" {
			router = "R2"
		}
		nextFace++
		h.attach(name, router, nextFace)
		area, ok := m.Area(cd.MustParse(areaKey))
		if !ok {
			t.Fatalf("area %q missing", areaKey)
		}
		keys := make([]string, len(area.SubscriptionCDs()))
		for i, c := range area.SubscriptionCDs() {
			keys[i] = c.Key()
		}
		h.fromClient(name, sub(keys...))
	}
	h.run()

	// Visibility matrix across four layers.
	pubs := []struct {
		who  string
		want []string // receivers (excluding publisher echo filtering)
	}{
		// Roomer publishes in /1/1/a: seen by the zoner hovering above, the
		// plane, the satellite — but NOT the neighboring room.
		{"roomer", []string{"plane", "roomer", "satellite", "zoner"}},
		// Zoner publishes to /1/1/ airspace: both rooms see the hover.
		{"zoner", []string{"neighbor", "plane", "roomer", "satellite", "zoner"}},
		// The plane over region 1 is seen by everyone under it.
		{"plane", []string{"neighbor", "plane", "roomer", "satellite", "zoner"}},
		// The satellite is seen by all.
		{"satellite", []string{"neighbor", "plane", "roomer", "satellite", "zoner"}},
	}
	for _, tt := range pubs {
		for _, c := range h.clients {
			c.received = nil
		}
		area, _ := m.Area(cd.MustParse(players[tt.who]))
		h.fromClient(tt.who, mcast(area.PublishCD().Key(), tt.who, 1, "evt"))
		h.run()
		var got []string
		for name, c := range h.clients {
			if len(c.multicastsReceived()) > 0 {
				got = append(got, name)
			}
		}
		sort.Strings(got)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("%s publishes at %q: delivered to %v, want %v",
				tt.who, players[tt.who], got, tt.want)
		}
	}

	// Movement across four layers classifies and costs correctly: a room
	// player ascending to the zone hover must download the sibling room.
	from, _ := m.Area(cd.MustParse("/1/1/a"))
	to, _ := m.Area(cd.MustParse("/1/1"))
	snaps := gamemap.SnapshotCDs(from, to)
	if len(snaps) != 1 || snaps[0] != cd.MustParse("/1/1/b") {
		t.Errorf("room→zone snapshots = %v", snaps)
	}
}
