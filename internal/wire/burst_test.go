package wire

import (
	"bytes"
	"testing"

	"github.com/icn-gaming/gcopss/internal/cd"
)

func burstFixture() []*Packet {
	return []*Packet{
		{Type: TypeMulticast, CDs: []cd.CD{cd.MustParse("/1/2")},
			Payload: []byte("move-a"), Origin: "p1", Seq: 1, SentAt: 10,
			CDHashes: []uint64{1, 2, 3, 4, 5, 6}},
		{Type: TypeMulticast, CDs: []cd.CD{cd.MustParse("/1/2")},
			Payload: []byte("move-b"), Origin: "p2", Seq: 2, SentAt: 11,
			CDHashes: []uint64{1, 2, 3, 4, 5, 6}},
		{Type: TypeSubscribe, CDs: []cd.CD{cd.MustParse("/3")}},
		{Type: TypeAck, CtlSeq: 9},
	}
}

// TestAppendEncodeBurstMatchesSequential pins the burst packer to the
// per-packet encoder: the concatenation must be byte-identical to encoding
// each packet in order, and SizeBurst must predict the total exactly.
func TestAppendEncodeBurstMatchesSequential(t *testing.T) {
	pkts := burstFixture()
	var want []byte
	for _, p := range pkts {
		b, err := Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, b...)
	}
	got, err := AppendEncodeBurst(nil, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("burst encoding differs from sequential: %d vs %d bytes", len(got), len(want))
	}
	if SizeBurst(pkts) != len(want) {
		t.Errorf("SizeBurst = %d, want %d", SizeBurst(pkts), len(want))
	}
	// The concatenation must decode back to the same packets.
	rest := got
	for i, p := range pkts {
		dec, n, err := Decode(rest)
		if err != nil {
			t.Fatalf("decode packet %d: %v", i, err)
		}
		rest = rest[n:]
		if dec.Type != p.Type || dec.Origin != p.Origin || dec.Seq != p.Seq {
			t.Errorf("packet %d round-trip mismatch: got %+v", i, dec)
		}
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes after decoding the burst", len(rest))
	}
}

// TestAppendEncodeBurstPreservesPrefix pins the append contract: existing
// bytes in dst survive, as with AppendEncode.
func TestAppendEncodeBurstPreservesPrefix(t *testing.T) {
	pkts := burstFixture()
	prefix := []byte{0xde, 0xad}
	out, err := AppendEncodeBurst(append([]byte(nil), prefix...), pkts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:2], prefix) {
		t.Fatal("AppendEncodeBurst clobbered the dst prefix")
	}
	want, _ := AppendEncodeBurst(nil, pkts) //lint:allow errcheckedfaces same packets already encoded without error above
	if !bytes.Equal(out[2:], want) {
		t.Fatal("AppendEncodeBurst after prefix differs from fresh encoding")
	}
}

// TestAppendEncodeBurstInvalidLeavesDst pins the all-or-nothing contract:
// a burst containing any invalid packet writes nothing.
func TestAppendEncodeBurstInvalidLeavesDst(t *testing.T) {
	pkts := []*Packet{
		{Type: TypeAck, CtlSeq: 1},
		{}, // invalid
	}
	dst := append(make([]byte, 0, 64), 0xbe, 0xef)
	out, err := AppendEncodeBurst(dst, pkts)
	if err == nil {
		t.Fatal("AppendEncodeBurst with invalid packet: want error")
	}
	if len(out) != 2 || !bytes.Equal(out, []byte{0xbe, 0xef}) {
		t.Fatalf("dst modified on error: %x", out)
	}
}

// TestAppendEncodeBurstReuseAllocFree locks the burst serialization budget:
// packing a whole burst into a buffer with sufficient capacity must not
// allocate at all — this is the satellite's 0 allocs/op reuse requirement.
func TestAppendEncodeBurstReuseAllocFree(t *testing.T) {
	pkts := burstFixture()
	buf := make([]byte, 0, SizeBurst(pkts))
	allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendEncodeBurst(buf[:0], pkts)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs != 0 {
		t.Errorf("AppendEncodeBurst into pre-sized buffer: %v allocs/op, want 0", allocs)
	}
}

// TestAppendEncodeBurstGrowsOnce pins the single-grow behavior: starting from
// an empty buffer the packer allocates at most one slab for the whole burst.
func TestAppendEncodeBurstGrowsOnce(t *testing.T) {
	pkts := burstFixture()
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AppendEncodeBurst(nil, pkts); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Errorf("AppendEncodeBurst from nil dst: %v allocs/op, want <= 1", allocs)
	}
}
