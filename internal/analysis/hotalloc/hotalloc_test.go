package hotalloc

import (
	"testing"

	"github.com/icn-gaming/gcopss/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	// alloclib is listed first so its allocates-facts are visible when hot
	// (which imports it) is analyzed — the dependency-order contract.
	analysistest.Run(t, analysistest.TestData(), Analyzer,
		"alloclib", // exports allocates-facts, no diagnostics of its own
		"hot",      // every flagged construct plus the clean idioms
	)
}
