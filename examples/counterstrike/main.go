// Counterstrike: a trace-driven session in the style of the paper's
// evaluation. A synthetic Counter-Strike-like trace (heavy-tailed player
// activity, 5×5 map, per-area object populations) is replayed through a
// G-COPSS fabric; the example reports who saw what, the hierarchy-induced
// fan-out per layer, and the multicast advantage over naive unicast.
//
//	go run ./examples/counterstrike
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	gcopss "github.com/icn-gaming/gcopss"
	"github.com/icn-gaming/gcopss/internal/gamemap"
	"github.com/icn-gaming/gcopss/internal/trace"
)

func main() {
	// The paper's world: 5×5 map with 3,197 objects.
	world := gamemap.NewWorld(mustMap())
	check(world.PopulateObjects(gamemap.PaperObjectCounts(), 0, rand.New(rand.NewSource(1))))

	// A small slice of the CS workload: 60 players, 2 minutes.
	cfg := trace.PaperConfig()
	cfg.Players = 60
	cfg.TotalUpdates = 3000
	cfg.Duration = 2 * time.Minute
	cfg.Seed = 7
	tr, err := trace.Generate(world, cfg)
	check(err)

	// Fabric: four routers in a diamond, RP in the middle.
	net, err := gcopss.New(5, 5)
	check(err)
	defer net.Close()
	for _, r := range []string{"core", "east", "west", "south"} {
		check(net.AddRouter(r))
	}
	for _, edge := range []string{"east", "west", "south"} {
		check(net.Link("core", edge))
	}
	check(net.StartRP("core", "/rp"))

	// Join the trace's players, spread over the edge routers.
	routers := []string{"east", "west", "south"}
	players := make([]*gcopss.Player, len(tr.Players))
	received := make([]int, len(tr.Players))
	for i, info := range tr.Players {
		p, err := net.Join(info.ID, routers[i%len(routers)], info.Area.Key())
		check(err)
		players[i] = p
	}

	// Replay the updates (instant delivery: the facade demonstrates
	// semantics; timing lives in the testbed and simulator). Inboxes are
	// drained as we go, like real clients rendering frames.
	const (
		layerWorld = iota
		layerRegionAir
		layerZone
	)
	perLayer := map[int]int{}
	totalDeliveries := 0
	drain := func() {
		for i, p := range players {
			for {
				select {
				case <-p.Updates():
					received[i]++
					totalDeliveries++
					continue
				default:
				}
				break
			}
		}
	}
	for i, u := range tr.Updates {
		check(players[u.Player].Publish(u.Object, make([]byte, u.Size)))
		switch {
		case u.CD.Len() == 1: // the world airspace leaf "/"
			perLayer[layerWorld]++
		case u.CD.IsAirspace():
			perLayer[layerRegionAir]++
		default:
			perLayer[layerZone]++
		}
		if i%50 == 0 {
			drain()
		}
	}
	drain()

	fmt.Printf("replayed %d updates from %d players\n", len(tr.Updates), len(tr.Players))
	fmt.Printf("updates by layer: %d world / %d region-airspace / %d zone\n",
		perLayer[layerWorld], perLayer[layerRegionAir], perLayer[layerZone])
	fmt.Printf("total deliveries: %d (avg fan-out %.1f receivers/update)\n",
		totalDeliveries, float64(totalDeliveries)/float64(len(tr.Updates)))

	// The content-centric win: a server would unicast every one of those
	// deliveries through itself.
	sort.Ints(received)
	fmt.Printf("per-player deliveries: min=%d median=%d max=%d\n",
		received[0], received[len(received)/2], received[len(received)-1])
	fmt.Println("players never learned each other's addresses — only map positions.")
}

func mustMap() *gamemap.Map {
	m, err := gamemap.NewGrid(5, 5)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
