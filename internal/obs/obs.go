// Package obs is the telemetry layer of the G-COPSS reproduction: a
// stdlib-only, allocation-conscious metrics registry, a bounded flight
// recorder for packet-path events, and a structured logger.
//
// The design follows the shape of an NDN forwarder's management plane (per
// the NFD counters and COPSS-lite's per-node packet accounting): hot paths
// hold pre-resolved handles (*Counter, *Gauge, *Histogram) obtained once at
// setup, so recording is a single atomic operation with zero heap
// allocations; the Registry's maps are only touched at construction and
// exposition time.
//
// Concurrency: Counter, Gauge and Histogram are safe for concurrent use
// (atomics). GaugeFunc callbacks are evaluated during exposition and must be
// synchronized by the host if they read non-atomic state — the TCP daemon
// serializes exposition through its event loop for exactly this reason.
//
// Metric names are constrained to ^[a-z][a-z0-9_.]*$ and must be
// compile-time literals at every Registry constructor call site (enforced by
// the gcopsslint obsnames checker), so the metric population of a binary is
// statically known and hot paths never build names dynamically.
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (table sizes, queue depths).
type Gauge struct {
	v atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeVec is a family of gauges distinguished by one label (e.g. one queue
// depth gauge per RP). The family name is registered once with a literal
// name; children are materialized on demand with With.
type GaugeVec struct {
	name  string
	label string

	mu sync.Mutex
	// children maps label values to their gauges.
	//
	//gcopss:guardedby mu
	children map[string]*Gauge
	// order remembers label creation order for stable exposition.
	//
	//gcopss:guardedby mu
	order []string
}

// With returns the child gauge for the given label value, creating it on
// first use. Callers cache the returned handle; With itself takes a lock and
// is not for hot paths.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.children[value]; ok {
		return g
	}
	g := &Gauge{}
	v.children[value] = g
	v.order = append(v.order, value)
	return g
}

// snapshot returns the label values in creation order with their gauges.
func (v *GaugeVec) snapshot() ([]string, []*Gauge) {
	v.mu.Lock()
	defer v.mu.Unlock()
	values := append([]string(nil), v.order...)
	gauges := make([]*Gauge, len(values))
	for i, val := range values {
		gauges[i] = v.children[val]
	}
	return values, gauges
}

// metricKind tags what a registered name refers to, so a name cannot be
// registered twice with different types.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindGaugeVec
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gauge (func)"
	case kindHistogram:
		return "histogram"
	case kindGaugeVec:
		return "gauge vec"
	default:
		return "unknown"
	}
}

// Registry holds named metrics. Constructors are idempotent: requesting an
// existing name of the same kind returns the already-registered metric, so
// components sharing a registry can resolve handles independently.
//
// Constructors panic on an invalid name or a kind conflict: both are setup
// bugs in compile-time literals (see the obsnames checker), not runtime
// conditions, and must fail loudly at process start rather than silently
// corrupting the exposition.
type Registry struct {
	mu sync.RWMutex
	// kinds claims each name for one metric kind.
	//
	//gcopss:guardedby mu
	kinds map[string]metricKind
	// counters holds the registered counters.
	//
	//gcopss:guardedby mu
	counters map[string]*Counter
	// gauges holds the registered gauges.
	//
	//gcopss:guardedby mu
	gauges map[string]*Gauge
	// gaugeFuncs holds the exposition-time callbacks.
	//
	//gcopss:guardedby mu
	gaugeFuncs map[string]func() float64
	// histograms holds the registered histograms.
	//
	//gcopss:guardedby mu
	histograms map[string]*Histogram
	// gaugeVecs holds the registered gauge families.
	//
	//gcopss:guardedby mu
	gaugeVecs map[string]*GaugeVec
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:      make(map[string]metricKind),
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
		gaugeVecs:  make(map[string]*GaugeVec),
	}
}

// ValidName reports whether a metric name matches ^[a-z][a-z0-9_.]*$.
func ValidName(name string) bool {
	if name == "" || name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 1; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' && c != '.' {
			return false
		}
	}
	return true
}

// register validates and claims a name for the given kind; it must be called
// with the write lock held.
//
//gcopss:locked mu
func (r *Registry) register(name string, kind metricKind) {
	if !ValidName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want ^[a-z][a-z0-9_.]*$)", name))
	}
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: metric %q already registered as %v, requested %v", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, kindCounter)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, kindGauge)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time (table sizes read straight from the owning structure). Re-registering
// a name replaces the callback — routers re-bind their engines' gauges when
// a shared registry is installed.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, kindGaugeFunc)
	r.gaugeFuncs[name] = fn
}

// Histogram returns the named histogram with the given upper bounds,
// registering it on first use. Requesting an existing histogram ignores the
// bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, kindHistogram)
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// GaugeVec returns the named single-label gauge family, registering it on
// first use.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, kindGaugeVec)
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{name: name, label: label, children: make(map[string]*Gauge)}
		r.gaugeVecs[name] = v
	}
	return v
}
