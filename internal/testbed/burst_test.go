package testbed

import (
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// burstTraceEntry is one delivery observed at the trace sink node.
type burstTraceEntry struct {
	at  int64
	seq uint64
}

// burstTrace runs a 3-node chain src→mid→dst with mid and dst on different
// shards, so mid's in-window emissions exercise the tx rings when burst mode
// is on: src fans one injected packet into 3 copies, and mid re-emits 2
// packets per copy toward dst. It returns dst's delivery trace, the aggregate
// stats and the testbed (for the coalescing counter).
func burstTrace(t *testing.T, workers int, burst bool) ([]burstTraceEntry, uint64, float64, *Testbed) {
	t.Helper()
	opts := []Option{WithWorkers(workers)}
	if burst {
		opts = append(opts, WithBurst())
	}
	tb := New(opts...)

	tb.AddNodeOn("src", 0, func(_ time.Time, _ ndn.FaceID, pkt *wire.Packet, out ndn.ActionSink) {
		for i := uint64(1); i <= 3; i++ {
			cp := *pkt
			cp.Seq = i
			out.Emit(ndn.Action{Face: 1, Packet: &cp})
		}
	}, func(*wire.Packet) time.Duration { return 100 * time.Microsecond }, 0)
	tb.AddNodeOn("mid", workers-1, func(_ time.Time, _ ndn.FaceID, pkt *wire.Packet, out ndn.ActionSink) {
		for j := uint64(1); j <= 2; j++ {
			cp := *pkt
			cp.Seq = pkt.Seq*10 + j
			out.Emit(ndn.Action{Face: 1, Packet: &cp})
		}
	}, func(*wire.Packet) time.Duration { return time.Millisecond }, 100*time.Microsecond)
	var got []burstTraceEntry
	tb.AddNodeOn("dst", 0, func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, _ ndn.ActionSink) {
		got = append(got, burstTraceEntry{at: now.UnixNano(), seq: pkt.Seq})
	}, func(*wire.Packet) time.Duration { return 10 * time.Microsecond }, 0)
	if err := tb.Connect("src", 1, "mid", 0, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := tb.Connect("mid", 1, "dst", 0, time.Millisecond); err != nil {
		t.Fatal(err)
	}

	t0 := tb.Now()
	tb.Inject(t0, "src", 0, &wire.Packet{Type: wire.TypeMulticast, Name: "/x", Origin: "p"})
	if err := tb.Run(t0.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	events, bytes := tb.Stats()
	return got, events, bytes, tb
}

// TestBurstMatchesPerPacketTrace pins the burst data plane's contract: the
// delivery trace — arrival times and packet identities in execution order —
// and the aggregate stats must be bit-identical between burst and per-packet
// modes at every worker count, while the burst run actually coalesces
// (mid's two same-finish emissions toward dst share one ring run).
func TestBurstMatchesPerPacketTrace(t *testing.T) {
	base, baseEvents, baseBytes, _ := burstTrace(t, 2, false)
	if len(base) != 6 {
		t.Fatalf("baseline delivered %d packets, want 6", len(base))
	}
	for _, cfg := range []struct {
		workers int
		burst   bool
	}{{2, true}, {1, true}, {1, false}} {
		got, events, bytes, tb := burstTrace(t, cfg.workers, cfg.burst)
		if len(got) != len(base) {
			t.Fatalf("workers=%d burst=%v: %d deliveries, want %d", cfg.workers, cfg.burst, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Errorf("workers=%d burst=%v: delivery %d = %+v, want %+v", cfg.workers, cfg.burst, i, got[i], base[i])
			}
		}
		if events != baseEvents || bytes != baseBytes {
			t.Errorf("workers=%d burst=%v: stats %d/%v, want %d/%v", cfg.workers, cfg.burst, events, bytes, baseEvents, baseBytes)
		}
		switch {
		case cfg.workers > 1 && cfg.burst && tb.coalesced == 0:
			t.Error("parallel burst run never coalesced a ring run")
		case (cfg.workers == 1 || !cfg.burst) && tb.coalesced != 0:
			t.Errorf("workers=%d burst=%v coalesced %d bursts, want 0", cfg.workers, cfg.burst, tb.coalesced)
		}
	}
}

// TestBurstRingsDrainEveryBarrier pins the ring lifecycle: after Run returns,
// every link ring is empty and every dirty list drained — staged work never
// outlives the window that staged it.
func TestBurstRingsDrainEveryBarrier(t *testing.T) {
	_, _, _, tb := burstTrace(t, 2, true)
	for _, name := range tb.order {
		for _, l := range tb.nodes[name].links {
			if len(l.ring) != 0 {
				t.Errorf("node %s: link to %s holds %d staged entries after Run", name, l.to, len(l.ring))
			}
		}
	}
	for s, links := range tb.dirty {
		if len(links) != 0 {
			t.Errorf("shard %d dirty list holds %d links after Run", s, len(links))
		}
	}
}
