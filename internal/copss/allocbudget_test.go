package copss

import (
	"testing"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/ndn"
)

// buildBudgetST populates an ST with a realistic small fan-out: a handful of
// faces subscribed across a two-level CD hierarchy.
func buildBudgetST(mode MatchMode) (*ST, cd.CD) {
	st := NewST(mode)
	pub := cd.MustParse("/1/2")
	st.Add(1, cd.MustParse("/1"))
	st.Add(2, cd.MustParse("/1/2"))
	st.Add(3, cd.MustParse("/1/3"))
	st.Add(4, cd.Root())
	st.Add(5, cd.MustParse("/2"))
	return st, pub
}

// TestFacesForHashedAllocFree locks the steady-state forwarding budget at
// zero: once the pair cache is warm, an ST query must not allocate in any
// match mode — this is the per-hop hot path of every Multicast.
func TestFacesForHashedAllocFree(t *testing.T) {
	for _, mode := range []MatchMode{MatchExact, MatchBloom, MatchBloomVerified} {
		st, pub := buildBudgetST(mode)
		pairs := PrefixHashes(pub)
		flat := FlattenHashes(pairs)
		// Warm the scratch buffers and the pair cache.
		st.FacesFor(pub)
		st.FacesForHashed(pub, pairs)
		st.FacesForFlat(pub, flat)

		if allocs := testing.AllocsPerRun(100, func() { st.FacesFor(pub) }); allocs != 0 {
			t.Errorf("mode %d: FacesFor allocs/op = %v, want 0", mode, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() { st.FacesForHashed(pub, pairs) }); allocs != 0 {
			t.Errorf("mode %d: FacesForHashed allocs/op = %v, want 0", mode, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() { st.FacesForFlat(pub, flat) }); allocs != 0 {
			t.Errorf("mode %d: FacesForFlat allocs/op = %v, want 0", mode, allocs)
		}
	}
}

// TestFacesForFlatEquivalence pins FacesForFlat to FacesFor, including the
// fallback on a malformed hash vector.
func TestFacesForFlatEquivalence(t *testing.T) {
	st, pub := buildBudgetST(MatchBloomVerified)
	want := append([]ndn.FaceID(nil), st.FacesFor(pub)...)
	got := append([]ndn.FaceID(nil), st.FacesForFlat(pub, FlattenHashes(PrefixHashes(pub)))...)
	if len(got) != len(want) {
		t.Fatalf("FacesForFlat = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FacesForFlat = %v, want %v", got, want)
		}
	}
	// Wrong-length vector: must fall back to hashing, not misroute.
	bad := append([]ndn.FaceID(nil), st.FacesForFlat(pub, []uint64{1, 2, 3})...)
	if len(bad) != len(want) {
		t.Fatalf("FacesForFlat with bad vector = %v, want %v", bad, want)
	}
}

// TestHashCache covers the first-hop hash memoization: stable vectors per
// CD, and a wholesale reset instead of unbounded growth.
func TestHashCache(t *testing.T) {
	hc := NewHashCache(2)
	c1, c2 := cd.MustParse("/1"), cd.MustParse("/2")
	v1 := hc.FlatFor(c1)
	if len(v1) != 2*(c1.Len()+1) {
		t.Fatalf("FlatFor length = %d, want %d", len(v1), 2*(c1.Len()+1))
	}
	if &hc.FlatFor(c1)[0] != &v1[0] {
		t.Error("FlatFor did not memoize")
	}
	hc.FlatFor(c2)
	if hc.Len() != 2 {
		t.Fatalf("Len = %d, want 2", hc.Len())
	}
	// Cap reached: the next distinct CD resets the cache wholesale.
	hc.FlatFor(cd.MustParse("/3"))
	if hc.Len() != 1 {
		t.Fatalf("Len after reset = %d, want 1", hc.Len())
	}
}

func BenchmarkFacesForHashed(b *testing.B) {
	st, pub := buildBudgetST(MatchBloomVerified)
	flat := FlattenHashes(PrefixHashes(pub))
	st.FacesForFlat(pub, flat)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.FacesForFlat(pub, flat)
	}
}
