// Package event provides the discrete-event scheduler shared by the
// packet-level testbed and the trace-driven simulator: a time-ordered event
// heap with deterministic FIFO tie-breaking.
package event

import (
	"time"
)

// Handler is an event callback; it runs at its scheduled virtual time and
// may schedule further events.
type Handler func(now time.Time)

// Payload is a pre-bound argument for AtCall events. It exists so that hot
// schedulers (the testbed transmits one event per packet copy) can enqueue
// a delivery without allocating a fresh closure per event: the three fields
// cover a (node, face, packet)-shaped argument, and storing a pointer in Ptr
// does not allocate.
type Payload struct {
	Str string
	Int int64
	Ptr any
}

// CallHandler is an event callback taking its pre-bound Payload.
type CallHandler func(now time.Time, pl Payload)

// item is one scheduled event. Exactly one of fn and call is set.
type item struct {
	at   time.Time
	seq  uint64 // insertion order breaks time ties deterministically
	fn   Handler
	call CallHandler
	pl   Payload
}

// Scheduler is a virtual-time discrete-event loop. The zero value is not
// usable; create with NewScheduler. Events are stored in a hand-rolled
// value heap: pushing an event costs no allocation beyond amortized slice
// growth (container/heap over []*item would allocate per event, which
// dominated the simulator's profile).
type Scheduler struct {
	now       time.Time
	seq       uint64
	heap      []item
	processed uint64
}

// NewScheduler starts virtual time at the given origin.
func NewScheduler(origin time.Time) *Scheduler {
	return &Scheduler{now: origin}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time { return s.now }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.heap) }

// NextAt peeks at the earliest queued event time; ok is false when the queue
// is empty. The sharded scheduler uses it to bound conservative windows.
func (s *Scheduler) NextAt() (at time.Time, ok bool) {
	if len(s.heap) == 0 {
		return time.Time{}, false
	}
	return s.heap[0].at, true
}

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// At schedules fn at an absolute virtual time. Times in the past run at the
// current time (immediately on the next step), preserving causality.
func (s *Scheduler) At(at time.Time, fn Handler) {
	s.push(item{at: s.clamp(at), fn: fn})
}

// AtCall schedules fn(now, pl) at an absolute virtual time. Unlike At it
// needs no closure: callers bind the argument through pl, so the hot path
// performs zero allocations per event.
func (s *Scheduler) AtCall(at time.Time, fn CallHandler, pl Payload) {
	s.push(item{at: s.clamp(at), call: fn, pl: pl})
}

// After schedules fn after a delay from the current virtual time.
func (s *Scheduler) After(d time.Duration, fn Handler) {
	s.At(s.now.Add(d), fn)
}

func (s *Scheduler) clamp(at time.Time) time.Time {
	if at.Before(s.now) {
		return s.now
	}
	return at
}

func (s *Scheduler) push(it item) {
	s.seq++
	it.seq = s.seq
	s.heap = append(s.heap, it)
	// Sift up.
	h := s.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (a *item) less(b *item) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.seq < b.seq
}

// pop removes and returns the earliest event.
func (s *Scheduler) pop() item {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = item{} // release the callback and payload for GC
	s.heap = h[:last]
	h = s.heap
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].less(&h[smallest]) {
			smallest = l
		}
		if r < len(h) && h[r].less(&h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// Step executes the next event; it reports whether one was available.
func (s *Scheduler) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	it := s.pop()
	s.now = it.at
	s.processed++
	if it.fn != nil {
		it.fn(s.now)
	} else {
		it.call(s.now, it.pl)
	}
	return true
}

// Run executes events until the queue drains or maxEvents is reached
// (maxEvents <= 0 means unbounded). It returns the number executed.
func (s *Scheduler) Run(maxEvents uint64) uint64 {
	var n uint64
	for (maxEvents <= 0 || n < maxEvents) && s.Step() {
		n++
	}
	return n
}

// RunUntil executes events with time ≤ deadline; later events stay queued.
func (s *Scheduler) RunUntil(deadline time.Time) uint64 {
	var n uint64
	for len(s.heap) > 0 && !s.heap[0].at.After(deadline) {
		s.Step()
		n++
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return n
}
