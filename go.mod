module github.com/icn-gaming/gcopss

go 1.22
