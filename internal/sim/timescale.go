package sim

import (
	"math/rand"
	"time"

	"github.com/icn-gaming/gcopss/internal/trace"
)

// CompressRamp rescales the timestamps of a slice of updates so that the
// inter-arrival time ramps linearly from startIA to endIA (milliseconds).
//
// The paper replays the "peak period" of the CS trace, where the mean
// update inter-arrival is ≈2.4 ms and the offered load rises as the evening
// peak builds — which is exactly what makes 1–2 RPs congest (Table I,
// Fig. 5b) while 3 do not. CompressRamp(updates, 3.0, 1.8) reproduces that
// regime with a 2.4 ms mean.
func CompressRamp(updates []trace.Update, startIAms, endIAms float64) []trace.Update {
	out := make([]trace.Update, len(updates))
	tMs := 0.0
	n := float64(len(updates))
	for i, u := range updates {
		out[i] = u
		out[i].At = time.Duration(tMs * float64(time.Millisecond))
		frac := float64(i) / n
		tMs += startIAms + (endIAms-startIAms)*frac
	}
	return out
}

// Compress rescales timestamps to a constant inter-arrival (ms).
func Compress(updates []trace.Update, iaMs float64) []trace.Update {
	return CompressRamp(updates, iaMs, iaMs)
}

// FirstN returns the first n updates (or all of them if fewer).
func FirstN(updates []trace.Update, n int) []trace.Update {
	if n > len(updates) {
		n = len(updates)
	}
	return updates[:n]
}

// PlayerSubset selects n random players and returns (mask, filtered
// updates). Filtering a constant-rate trace scales the offered load
// proportionally to the player count, which is how the Fig. 6 sweep varies
// "the number of players in the network".
func PlayerSubset(tr *trace.Trace, updates []trace.Update, n int, seed int64) ([]bool, []trace.Update) {
	total := len(tr.Players)
	if n >= total {
		mask := make([]bool, total)
		for i := range mask {
			mask[i] = true
		}
		return mask, updates
	}
	rnd := rand.New(rand.NewSource(seed))
	mask := make([]bool, total)
	for _, idx := range rnd.Perm(total)[:n] {
		mask[idx] = true
	}
	var out []trace.Update
	for _, u := range updates {
		if mask[u.Player] {
			out = append(out, u)
		}
	}
	return mask, out
}
