// Package faultnet is a seeded, deterministic fault-injection layer for the
// gcopss link layer. It wraps both the in-process testbed links and the TCP
// transport with configurable per-link loss, duplication, reordering,
// fixed+jittered delay, and partition/heal schedules.
//
// Every decision is a pure function of (spec, seed, link, arrival order,
// injected clock): the package never reads the wall clock and never touches
// the global math/rand source, so a chaos run replays bit-identically from
// its seed. Hosts feed their own notion of "now" (virtual time in the
// testbed, wall time in the daemon) and an epoch that anchors the partition
// schedule.
//
// # Spec grammar
//
// A fault spec is a semicolon-separated list of clauses. Each clause
// optionally names the link it applies to, then gives comma-separated
// key=value parameters:
//
//	spec   := clause (';' clause)*
//	clause := [link ':'] param (',' param)*
//	param  := key '=' value
//
// The link is "*" (default, all links), "a-b" (both directions of the link
// between a and b) or "a>b" (that direction only). The first clause whose
// link and class match a packet decides its fate. Parameters:
//
//	only=CLASS   packet class filter: all (default), ctl (Join/Confirm/
//	             Leave/Handoff/Prune/FIBAdd/FIBRemove/Ack), qr (Interest/
//	             Data), mcast (Multicast/Subscribe/Unsubscribe)
//	loss=P       drop probability in [0,1]
//	dup=P        duplication probability in [0,1]
//	reorder=P    reorder probability in [0,1]; a reordered packet is held
//	             back by 1-4 reorder quanta so later packets overtake it
//	delay=D      fixed extra delay (Go duration, also the reorder quantum)
//	jitter=D     uniform random extra delay in [0,D)
//	part=A..B    partition window: drop everything matching this clause
//	             between epoch+A and epoch+B (repeatable)
//
// Example:
//
//	"R1-R3:loss=0.05,reorder=0.2,delay=1ms;*:only=ctl,part=150ms..200ms"
package faultnet

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/icn-gaming/gcopss/internal/wire"
)

// Class filters which packet types a rule applies to.
type Class uint8

// Packet classes.
const (
	// ClassAll matches every packet.
	ClassAll Class = iota
	// ClassCtl matches control-plane packets: Join, Confirm, Leave,
	// Handoff, Prune, FIBAdd, FIBRemove and Ack.
	ClassCtl
	// ClassQR matches query-response packets: Interest and Data.
	ClassQR
	// ClassMcast matches dissemination packets: Multicast, Subscribe,
	// Unsubscribe.
	ClassMcast
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassAll:
		return "all"
	case ClassCtl:
		return "ctl"
	case ClassQR:
		return "qr"
	case ClassMcast:
		return "mcast"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Matches reports whether the class covers the packet type.
func (c Class) Matches(t wire.Type) bool {
	switch c {
	case ClassAll:
		return true
	case ClassCtl:
		switch t {
		case wire.TypeJoin, wire.TypeConfirm, wire.TypeLeave, wire.TypeHandoff,
			wire.TypePrune, wire.TypeFIBAdd, wire.TypeFIBRemove, wire.TypeAck:
			return true
		}
	case ClassQR:
		return t == wire.TypeInterest || t == wire.TypeData
	case ClassMcast:
		return t == wire.TypeMulticast || t == wire.TypeSubscribe || t == wire.TypeUnsubscribe
	}
	return false
}

// Window is a half-open partition interval [From, To) of offsets from the
// injector's epoch.
type Window struct {
	From, To time.Duration
}

// Rule is one parsed clause of a fault spec.
type Rule struct {
	// Link is "*" (all links), "a-b" (either direction) or "a>b" (directed).
	Link string
	// Class filters packet types; ClassAll matches everything.
	Class Class
	// Loss, Dup and Reorder are per-packet probabilities in [0,1].
	Loss, Dup, Reorder float64
	// Delay is a fixed extra latency added to matching packets; it doubles
	// as the reorder quantum (1ms when zero).
	Delay time.Duration
	// Jitter adds a uniform random extra latency in [0, Jitter).
	Jitter time.Duration
	// Partitions are drop-everything windows anchored at the epoch.
	Partitions []Window
}

// matchesLink reports whether the rule covers the directed link "a>b".
func (r *Rule) matchesLink(link string) bool {
	switch {
	case r.Link == "*" || r.Link == link:
		return true
	case strings.Contains(r.Link, "-"):
		a, b, _ := strings.Cut(r.Link, "-")
		la, lb, ok := strings.Cut(link, ">")
		return ok && ((la == a && lb == b) || (la == b && lb == a))
	}
	return false
}

// Spec is a parsed fault specification: an ordered rule list where the first
// matching rule decides a packet's fate.
type Spec struct {
	Rules []Rule
}

// ParseSpec parses the textual fault-spec grammar. An empty string yields an
// empty spec (no faults).
func ParseSpec(s string) (*Spec, error) {
	spec := &Spec{}
	if strings.TrimSpace(s) == "" {
		return spec, nil
	}
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		rule, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		spec.Rules = append(spec.Rules, rule)
	}
	return spec, nil
}

func parseClause(clause string) (Rule, error) {
	rule := Rule{Link: "*"}
	params := clause
	// A link prefix is everything before the first ':' — but only when it
	// contains no '=' (so "loss=0.1" alone is params, not a link).
	if head, tail, ok := strings.Cut(clause, ":"); ok && !strings.Contains(head, "=") {
		link := strings.TrimSpace(head)
		if link == "" {
			return rule, fmt.Errorf("faultnet: empty link in clause %q", clause)
		}
		if err := checkLinkName(link); err != nil {
			return rule, err
		}
		rule.Link = link
		params = tail
	}
	for _, param := range strings.Split(params, ",") {
		param = strings.TrimSpace(param)
		if param == "" {
			continue
		}
		key, val, ok := strings.Cut(param, "=")
		if !ok {
			return rule, fmt.Errorf("faultnet: parameter %q is not key=value", param)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "only":
			rule.Class, err = parseClass(val)
		case "loss":
			rule.Loss, err = parseProb(key, val)
		case "dup":
			rule.Dup, err = parseProb(key, val)
		case "reorder":
			rule.Reorder, err = parseProb(key, val)
		case "delay":
			rule.Delay, err = parseDur(key, val)
		case "jitter":
			rule.Jitter, err = parseDur(key, val)
		case "part":
			var w Window
			w, err = parseWindow(val)
			rule.Partitions = append(rule.Partitions, w)
		default:
			return rule, fmt.Errorf("faultnet: unknown parameter %q", key)
		}
		if err != nil {
			return rule, err
		}
	}
	return rule, nil
}

func checkLinkName(link string) error {
	if link == "*" {
		return nil
	}
	if strings.ContainsAny(link, ";:,= \t") {
		return fmt.Errorf("faultnet: link name %q contains reserved characters", link)
	}
	dashes := strings.Count(link, "-")
	arrows := strings.Count(link, ">")
	if dashes+arrows > 1 {
		return fmt.Errorf("faultnet: link %q must be a name, \"a-b\", \"a>b\" or \"*\"", link)
	}
	if dashes+arrows == 1 {
		sep := "-"
		if arrows == 1 {
			sep = ">"
		}
		a, b, _ := strings.Cut(link, sep)
		if a == "" || b == "" {
			return fmt.Errorf("faultnet: link %q has an empty endpoint", link)
		}
	}
	return nil
}

func parseClass(val string) (Class, error) {
	switch val {
	case "all":
		return ClassAll, nil
	case "ctl":
		return ClassCtl, nil
	case "qr":
		return ClassQR, nil
	case "mcast":
		return ClassMcast, nil
	}
	return ClassAll, fmt.Errorf("faultnet: unknown class %q (want all, ctl, qr or mcast)", val)
}

func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, fmt.Errorf("faultnet: bad %s=%q: %w", key, val, err)
	}
	if p < 0 || p > 1 || p != p { // p != p rejects NaN
		return 0, fmt.Errorf("faultnet: %s=%v out of [0,1]", key, p)
	}
	return p, nil
}

func parseDur(key, val string) (time.Duration, error) {
	d, err := time.ParseDuration(val)
	if err != nil {
		return 0, fmt.Errorf("faultnet: bad %s=%q: %w", key, val, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("faultnet: negative %s=%v", key, d)
	}
	return d, nil
}

func parseWindow(val string) (Window, error) {
	from, to, ok := strings.Cut(val, "..")
	if !ok {
		return Window{}, fmt.Errorf("faultnet: partition %q is not A..B", val)
	}
	a, err := parseDur("part", from)
	if err != nil {
		return Window{}, err
	}
	b, err := parseDur("part", to)
	if err != nil {
		return Window{}, err
	}
	if b <= a {
		return Window{}, fmt.Errorf("faultnet: empty partition window %q", val)
	}
	return Window{From: a, To: b}, nil
}

// String renders the spec in canonical form; ParseSpec(s.String()) yields an
// equal spec.
func (s *Spec) String() string {
	var clauses []string
	for i := range s.Rules {
		clauses = append(clauses, s.Rules[i].String())
	}
	return strings.Join(clauses, ";")
}

// String renders one rule as a spec clause.
func (r *Rule) String() string {
	var params []string
	if r.Class != ClassAll {
		params = append(params, "only="+r.Class.String())
	}
	if r.Loss != 0 {
		params = append(params, "loss="+strconv.FormatFloat(r.Loss, 'g', -1, 64))
	}
	if r.Dup != 0 {
		params = append(params, "dup="+strconv.FormatFloat(r.Dup, 'g', -1, 64))
	}
	if r.Reorder != 0 {
		params = append(params, "reorder="+strconv.FormatFloat(r.Reorder, 'g', -1, 64))
	}
	if r.Delay != 0 {
		params = append(params, "delay="+r.Delay.String())
	}
	if r.Jitter != 0 {
		params = append(params, "jitter="+r.Jitter.String())
	}
	ws := append([]Window(nil), r.Partitions...)
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].From != ws[j].From {
			return ws[i].From < ws[j].From
		}
		return ws[i].To < ws[j].To
	})
	for _, w := range ws {
		params = append(params, "part="+w.From.String()+".."+w.To.String())
	}
	if len(params) == 0 {
		params = append(params, "loss=0")
	}
	out := strings.Join(params, ",")
	if r.Link != "*" {
		out = r.Link + ":" + out
	}
	return out
}
