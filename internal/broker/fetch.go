package broker

import (
	"sort"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/flowctl"
	"github.com/icn-gaming/gcopss/internal/obs"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// Legacy QR-fetch retry parameters, preserved as the flowctl Static-mode
// baseline tuning.
const (
	// DefaultQRRTO is the initial per-Interest retry timeout (the fixed
	// base in Static mode, the pre-sample seed otherwise).
	DefaultQRRTO = 100 * time.Millisecond
	// DefaultQRMaxAttempts is the legacy budget of sends per Interest
	// (first send included); adaptive configs default to
	// flowctl.DefaultMaxAttempts instead.
	DefaultQRMaxAttempts = 5
)

// qrDefaults normalizes a fetch flow config: QR fetches keep their
// historical 100ms initial timeout, and Static mode keeps the legacy
// 5-attempt budget.
func qrDefaults(cfg flowctl.Config) flowctl.Config {
	if cfg.InitialRTO <= 0 {
		cfg.InitialRTO = DefaultQRRTO
	}
	if cfg.MaxAttempts <= 0 && cfg.Static {
		cfg.MaxAttempts = DefaultQRMaxAttempts
	}
	return cfg.Norm()
}

// qrInFlight is the retry state of one unanswered Interest.
type qrInFlight struct {
	attempts int
	nextAt   time.Time
	// sentAt is the original transmission time; retransmitted marks
	// Interests whose Data must not be RTT-sampled (Karn's algorithm).
	sentAt        time.Time
	retransmitted bool
}

// QRFetch drives the query-response snapshot download of one leaf: first
// the manifest, then the changed objects through an AIMD pipelining window
// (the paper's "set of at most N queries outstanding at any time", with N
// floating between the flowctl bounds: +1 per answered Interest, halved on
// a retry round). Retry timers are adaptive — Data round trips feed an RFC
// 6298 estimator, so the retry RTO tracks the broker path.
//
// It is a pure state machine: feed it the Data packets addressed to it with
// the caller's clock and emit what it returns; it never reads time itself.
// A fetch always terminates — Done on success, Failed once any Interest
// exhausts its attempt budget.
type QRFetch struct {
	leaf cd.CD
	flow flowctl.Config
	win  *flowctl.Window
	est  *flowctl.Estimator

	wanted    []string
	nextToAsk int
	inflight  map[string]*qrInFlight // Interest name → retry state
	received  map[string]int         // object id → version
	done      bool
	failed    bool
	retrans   uint64

	// Telemetry, bound by Instrument; nil (the default) disables it.
	cwndHist *obs.Histogram
	srttHist *obs.Histogram
}

// NewFetch prepares a download of leaf's snapshot, configured through the
// unified flowctl surface: flowctl.WithWindow bounds the AIMD pipeline,
// flowctl.WithInitialRTO / WithRTOBounds / WithMaxAttempts tune the retry
// timers. With no options the fetch is adaptive with the legacy 100ms
// initial timeout; flowctl.Static() pins the window at InitialWindow and
// the RTO at InitialRTO (the paper's fixed-window behavior — pass
// flowctl.WithWindow(n, n, n) with Static for the exact legacy shape).
func NewFetch(leaf cd.CD, opts ...flowctl.Option) *QRFetch {
	var c flowctl.Config
	for _, o := range opts {
		o(&c)
	}
	cfg := qrDefaults(c)
	return &QRFetch{
		leaf:     leaf,
		flow:     cfg,
		win:      flowctl.NewWindow(cfg),
		est:      flowctl.NewEstimator(cfg),
		inflight: make(map[string]*qrInFlight),
		received: make(map[string]int),
	}
}

// Instrument binds the fetch's flow-control telemetry to reg: the window
// trajectory (observed once per answered Interest) and the smoothed RTT.
func (f *QRFetch) Instrument(reg *obs.Registry) {
	f.cwndHist = reg.Histogram("qr_cwnd", []float64{1, 2, 4, 8, 16, 32, 64})
	f.srttHist = reg.Histogram("qr_srtt_ms", obs.LatencyBucketsMs())
}

// StartAt returns the manifest Interest and arms its retry timer. The
// manifest rides outside the object window: there is nothing to pipeline
// until it arrives.
func (f *QRFetch) StartAt(now time.Time) []*wire.Packet {
	name := ManifestName(f.leaf)
	f.inflight[name] = &qrInFlight{attempts: 1, nextAt: now.Add(f.est.RTO()), sentAt: now}
	return []*wire.Packet{{Type: wire.TypeInterest, Name: name}}
}

// HandleDataAt consumes a Data packet; it returns follow-up Interests and
// whether the download completed. Only Data answering an Interest this fetch
// currently has in flight is accepted: duplicates and unrequested packets
// are ignored without touching the pipeline accounting, so a hostile or
// lossy network can delay the download but never wedge or corrupt it.
func (f *QRFetch) HandleDataAt(now time.Time, pkt *wire.Packet) ([]*wire.Packet, bool) {
	if f.done || f.failed || pkt.Type != wire.TypeData {
		return nil, f.done
	}
	s, asked := f.inflight[pkt.Name]
	if !asked {
		return nil, false // duplicate or unrequested: idempotent no-op
	}
	if pkt.Name == ManifestName(f.leaf) {
		f.observeRTT(now, s)
		delete(f.inflight, pkt.Name)
		for id := range ParseManifest(pkt.Payload) {
			f.wanted = append(f.wanted, id)
		}
		sort.Strings(f.wanted) // map order is random; fetch order must not be
		if len(f.wanted) == 0 {
			f.done = true
			return nil, true
		}
		return f.fill(now), false
	}
	id, version, _, ok := ParseObject(pkt.Payload)
	if !ok || id == "" || pkt.Name != ObjectName(f.leaf, id) {
		return nil, false // malformed, or named like our Interest but lying
	}
	f.observeRTT(now, s)
	delete(f.inflight, pkt.Name)
	f.received[id] = version
	f.win.OnAck() // additive increase: the pipeline may deepen
	if f.cwndHist != nil {
		f.cwndHist.Observe(float64(f.win.CWnd()))
	}
	out := f.fill(now)
	if len(f.received) == len(f.wanted) {
		f.done = true
		return out, true
	}
	return out, false
}

// observeRTT feeds one answered Interest's round trip into the estimator,
// unless the Interest was retransmitted (Karn: the sample is ambiguous).
func (f *QRFetch) observeRTT(now time.Time, s *qrInFlight) {
	if s.retransmitted {
		return
	}
	f.est.Observe(now.Sub(s.sentAt))
	if f.srttHist != nil {
		f.srttHist.Observe(float64(f.est.SRTT()) / float64(time.Millisecond))
	}
}

// Tick retries every in-flight Interest whose adaptive timeout expired,
// with doubled (MaxRTO-clamped) backoff. A retry round is one loss event:
// the window halves once per Tick that retries anything, no matter how many
// Interests expired together. An Interest that exhausts the flowctl
// MaxAttempts budget fails the whole fetch (returned Interests: none;
// Failed() turns true) — the caller can restart from scratch if it wants
// another go. Iteration is sorted by name so equal clocks produce equal
// retry orders.
func (f *QRFetch) Tick(now time.Time) []*wire.Packet {
	if f.done || f.failed || len(f.inflight) == 0 {
		return nil
	}
	names := make([]string, 0, len(f.inflight))
	for name := range f.inflight {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*wire.Packet
	lost := false
	for _, name := range names {
		s := f.inflight[name]
		if s.nextAt.After(now) {
			continue
		}
		if s.attempts >= f.flow.MaxAttempts {
			f.failed = true
			return nil
		}
		s.attempts++
		s.retransmitted = true
		s.nextAt = now.Add(f.est.BackoffRTO(s.attempts))
		f.retrans++
		lost = true
		out = append(out, &wire.Packet{Type: wire.TypeInterest, Name: name})
	}
	if lost {
		f.win.OnLoss() // multiplicative decrease, once per retry round
		if f.cwndHist != nil {
			f.cwndHist.Observe(float64(f.win.CWnd()))
		}
	}
	return out
}

// fill tops the pipeline back up to the AIMD window. Object Interests in
// flight are what the window counts; the manifest never is.
func (f *QRFetch) fill(now time.Time) []*wire.Packet {
	var out []*wire.Packet
	for len(f.inflight) < f.win.Effective() && f.nextToAsk < len(f.wanted) {
		id := f.wanted[f.nextToAsk]
		f.nextToAsk++
		name := ObjectName(f.leaf, id)
		f.inflight[name] = &qrInFlight{attempts: 1, nextAt: now.Add(f.est.RTO()), sentAt: now}
		out = append(out, &wire.Packet{Type: wire.TypeInterest, Name: name})
	}
	return out
}

// Done reports successful completion.
func (f *QRFetch) Done() bool { return f.done }

// Failed reports that some Interest exhausted its retry budget.
func (f *QRFetch) Failed() bool { return f.failed }

// Retransmissions returns how many Interest retries Tick has issued.
func (f *QRFetch) Retransmissions() uint64 { return f.retrans }

// Received returns how many objects arrived.
func (f *QRFetch) Received() int { return len(f.received) }

// CWnd returns the current AIMD pipeline window, for tests and exposition.
func (f *QRFetch) CWnd() int { return f.win.CWnd() }

// SRTT returns the smoothed Interest/Data round-trip estimate (zero before
// the first sample).
func (f *QRFetch) SRTT() time.Duration { return f.est.SRTT() }

// CyclicFetch drives the cyclic-multicast snapshot download of one leaf:
// subscribe to the data channel, signal the broker, collect one full
// rotation, then leave. Its flowctl AdvertisedWindow rides the
// session-start control multicast (the AdvWin wire TLV), telling the broker
// how many objects per rotation tick this mover can absorb; the broker caps
// the session at the smallest advertisement among its subscribers.
type CyclicFetch struct {
	leaf     cd.CD
	origin   string
	advWin   int
	expected int // from the manifest; -1 until known
	received map[string]int
	done     bool
}

// NewCyclicFetch prepares a cyclic download of leaf's snapshot. origin
// identifies the mover in control messages. flowctl.WithAdvertisedWindow
// sets the receive credit advertised to the broker; by default
// flowctl.DefaultAdvertisedWindow objects per delivery tick.
func NewCyclicFetch(leaf cd.CD, origin string, opts ...flowctl.Option) *CyclicFetch {
	cfg := flowctl.NewConfig(opts...)
	adv := cfg.AdvertisedWindow
	if adv == 0 {
		adv = flowctl.DefaultAdvertisedWindow
	}
	return &CyclicFetch{leaf: leaf, origin: origin, advWin: adv, expected: -1, received: make(map[string]int)}
}

// Start returns the subscription to the data channel plus the session-start
// control publication carrying this mover's advertised window.
func (f *CyclicFetch) Start() []*wire.Packet {
	return []*wire.Packet{
		{Type: wire.TypeSubscribe, CDs: []cd.CD{DataCD(f.leaf)}},
		{Type: wire.TypeMulticast, CDs: []cd.CD{CtlCD(f.leaf)}, Origin: f.origin,
			Payload: []byte("start"), AdvWin: uint32(f.advWin)},
	}
}

// HandleMulticast consumes a data-channel packet; on completion it returns
// the unsubscribe and session-stop packets.
func (f *CyclicFetch) HandleMulticast(pkt *wire.Packet) ([]*wire.Packet, bool) {
	if f.done || pkt.Type != wire.TypeMulticast {
		return nil, f.done
	}
	c, err := pkt.CD()
	if err != nil {
		return nil, false
	}
	if leaf, ok := LeafOfDataCD(c); !ok || leaf != f.leaf {
		return nil, false
	}
	id, version, manifest, ok := ParseObject(pkt.Payload)
	if !ok {
		return nil, false
	}
	if manifest >= 0 {
		f.expected = manifest
	} else {
		f.received[id] = version
	}
	if f.expected >= 0 && len(f.received) >= f.expected {
		f.done = true
		return []*wire.Packet{
			{Type: wire.TypeUnsubscribe, CDs: []cd.CD{DataCD(f.leaf)}},
			{Type: wire.TypeMulticast, CDs: []cd.CD{CtlCD(f.leaf)}, Origin: f.origin, Payload: []byte("stop")},
		}, true
	}
	return nil, false
}

// Done reports completion.
func (f *CyclicFetch) Done() bool { return f.done }

// Received returns how many distinct objects arrived.
func (f *CyclicFetch) Received() int { return len(f.received) }
