package panicky

import "errors"

func bad(cds []string) string {
	if len(cds) == 0 {
		panic("packet has no CD") // want "panic is forbidden in packet-handling package"
	}
	return cds[0]
}

func good(cds []string) (string, error) {
	if len(cds) == 0 {
		return "", errors.New("packet has no CD")
	}
	return cds[0], nil
}

func allowed() {
	//lint:allow nopanic unreachable: guarded by Validate above
	panic("unreachable")
}
