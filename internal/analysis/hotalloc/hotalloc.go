// Package hotalloc turns the repository's alloc-budget discipline into a
// compile-time gate: a function annotated //gcopss:hotpath — and, through
// cross-package facts, everything it calls inside the module — must not
// contain known-allocating constructs.
//
// Flagged constructs:
//
//   - fmt.Sprintf / fmt.Errorf (and Sprint/Sprintln/Appendf)
//   - non-constant string concatenation (+ or += on strings)
//   - slice/map composite literals, &T{…} literals, make and new inside loops
//   - closures capturing outer variables (each capture forces the variable
//     and the closure itself onto the heap)
//   - implicit value-to-interface conversions at call arguments, assignments
//     and returns (pointers, maps, channels, funcs, interfaces and constants
//     are exempt: those conversions do not allocate)
//
// Calls are checked interprocedurally: a same-package callee is resolved by a
// local fixpoint over the call graph, a cross-package callee through the
// FactStore — every function found to allocate (for any reason, annotated or
// not) exports an "allocates" fact that importing packages consume, so a hot
// path is poisoned by an allocation any number of module-internal calls away.
//
// Value-typed struct literals (ndn.Action{…} passed by value) stay exempt
// even in loops: they live on the stack and are exactly how the zero-copy
// emission API is meant to be used. Calls through interface values and stored
// function values are not resolved (the ActionSink.Emit seam is the one
// deliberate blind spot — sinks are per-shard and alloc-free by their own
// budget tests).
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"github.com/icn-gaming/gcopss/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name:        "hotalloc",
	Doc:         "//gcopss:hotpath functions (and everything they call in-module) must not contain known-allocating constructs",
	NeedsReason: true,
	Run:         run,
}

// A reason is one allocating construct found in a function body.
type reason struct {
	pos  token.Pos
	what string
}

// A calleeRef is one statically resolved call site.
type calleeRef struct {
	fn  *types.Func
	pos token.Pos
}

// fnInfo is the per-function summary the fixpoint runs on.
type fnInfo struct {
	decl    *ast.FuncDecl
	hot     bool
	direct  []reason
	callees []calleeRef
}

func run(pass *analysis.Pass) (interface{}, error) {
	infos := map[*types.Func]*fnInfo{}
	var order []*types.Func // deterministic iteration for reporting
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd}
			_, info.hot = analysis.FuncDirective(fd, "hotpath")
			sc := &scanner{pass: pass, info: info}
			sc.sigs = append(sc.sigs, fn.Type().(*types.Signature))
			sc.scan(fd.Body, 0)
			infos[fn] = info
			order = append(order, fn)
		}
	}

	// Fixpoint: a function allocates if it has a direct reason or calls an
	// allocating function (same package, or via an imported fact). The leaf
	// phrase is inherited so diagnostics name the root cause.
	alloc := map[*types.Func]string{}
	for fn, info := range infos {
		if len(info.direct) > 0 {
			alloc[fn] = info.direct[0].what
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, info := range infos {
			if _, done := alloc[fn]; done {
				continue
			}
			for _, c := range info.callees {
				if why, ok := allocWhy(pass, alloc, c.fn); ok {
					alloc[fn] = why
					changed = true
					break
				}
			}
		}
	}
	for fn, why := range alloc {
		pass.ExportFact(analysis.FuncKey(fn), why)
	}

	// Report inside hot functions only: each direct construct at its own
	// position, each call whose (transitive) callee allocates at the call.
	for _, fn := range order {
		info := infos[fn]
		if !info.hot {
			continue
		}
		for _, r := range info.direct {
			pass.Reportf(r.pos, "%s on hot path %s: //gcopss:hotpath functions must not allocate", r.what, fn.Name())
		}
		for _, c := range info.callees {
			if why, ok := allocWhy(pass, alloc, c.fn); ok {
				pass.Reportf(c.pos, "call to %s on hot path %s allocates: %s", c.fn.Name(), fn.Name(), why)
			}
		}
	}
	return nil, nil
}

// allocWhy resolves a callee's allocation status: same-package fixpoint
// result first, then the cross-package fact store.
func allocWhy(pass *analysis.Pass, alloc map[*types.Func]string, fn *types.Func) (string, bool) {
	if why, ok := alloc[fn]; ok {
		return why, true
	}
	f, ok := pass.ImportFact(analysis.FuncKey(fn))
	if !ok {
		return "", false
	}
	why, _ := f.(string)
	return why, why != ""
}

// scanner walks one function body collecting allocating constructs and call
// edges. depth counts enclosing loops; a FuncLit resets it (its body runs
// when called, not where it is written).
type scanner struct {
	pass *analysis.Pass
	info *fnInfo
	sigs []*types.Signature // enclosing func signatures, innermost last
}

func (s *scanner) add(pos token.Pos, what string) {
	s.info.direct = append(s.info.direct, reason{pos, what})
}

// scan dispatches on the node kinds the analyzer cares about and hand-walks
// their children so loop depth and signature context stay accurate.
func (s *scanner) scan(n ast.Node, depth int) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		s.scan(n.Init, depth)
		s.scanExpr(n.Cond, depth)
		s.scan(n.Post, depth)
		s.scanBlock(n.Body, depth+1)
		return
	case *ast.RangeStmt:
		s.scanExpr(n.X, depth)
		s.scanBlock(n.Body, depth+1)
		return
	case *ast.FuncLit:
		if caps := s.captures(n); len(caps) > 0 {
			s.add(n.Pos(), fmt.Sprintf("closure capturing %s", caps[0]))
		}
		sig, _ := s.pass.TypesInfo.Types[n].Type.(*types.Signature)
		s.sigs = append(s.sigs, sig)
		s.scanBlock(n.Body, 0)
		s.sigs = s.sigs[:len(s.sigs)-1]
		return
	case *ast.CallExpr:
		s.scanCall(n, depth)
		return
	case *ast.UnaryExpr:
		if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op == token.AND {
			if depth > 0 {
				s.add(n.Pos(), "&composite literal inside a loop")
			}
			// The literal's elements still need scanning, but the literal
			// itself was accounted for here.
			for _, e := range cl.Elts {
				s.scanExpr(e, depth)
			}
			return
		}
		s.scanExpr(n.X, depth)
		return
	case *ast.CompositeLit:
		if depth > 0 {
			switch s.litType(n).(type) {
			case *types.Slice:
				s.add(n.Pos(), "slice literal inside a loop")
			case *types.Map:
				s.add(n.Pos(), "map literal inside a loop")
			}
		}
		for _, e := range n.Elts {
			s.scanExpr(e, depth)
		}
		return
	case *ast.BinaryExpr:
		if n.Op == token.ADD && s.isNonConstString(n) {
			s.add(n.Pos(), "non-constant string concatenation")
		}
		s.scanExpr(n.X, depth)
		s.scanExpr(n.Y, depth)
		return
	case *ast.AssignStmt:
		s.scanAssign(n, depth)
		return
	case *ast.ReturnStmt:
		s.scanReturn(n, depth)
		return
	}
	// Generic traversal for everything else, one level at a time so the
	// cases above see every descendant with the right context.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		s.scan(child, depth)
		return false
	})
}

func (s *scanner) scanBlock(b *ast.BlockStmt, depth int) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		s.scan(st, depth)
	}
}

func (s *scanner) scanExpr(e ast.Expr, depth int) {
	if e == nil {
		return
	}
	s.scan(e, depth)
}

// scanCall classifies one call: known fmt allocators, make/new in loops,
// resolvable callees (edges for the fixpoint), and implicit interface
// conversions at the arguments.
func (s *scanner) scanCall(call *ast.CallExpr, depth int) {
	if tv, ok := s.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		// Conversion T(x), not a call. Interface targets allocate.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 && s.allocatingConv(call.Args[0]) {
			s.add(call.Pos(), "value-to-interface conversion")
		}
		for _, a := range call.Args {
			s.scanExpr(a, depth)
		}
		return
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := s.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			if depth > 0 && (id.Name == "make" || id.Name == "new") {
				s.add(call.Pos(), id.Name+" inside a loop")
			}
			for _, a := range call.Args {
				s.scanExpr(a, depth)
			}
			return
		}
	}
	if fn := calleeOf(s.pass, call); fn != nil {
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			switch fn.Name() {
			case "Sprintf", "Errorf", "Sprint", "Sprintln", "Appendf":
				s.add(call.Pos(), "fmt."+fn.Name())
			}
		} else {
			s.info.callees = append(s.info.callees, calleeRef{fn: fn, pos: call.Pos()})
		}
	}
	s.checkArgConvs(call)
	s.scanExpr(call.Fun, depth)
	for _, a := range call.Args {
		s.scanExpr(a, depth)
	}
}

// checkArgConvs flags concrete values passed to interface-typed parameters
// (including the variadic ...interface{} of the print family).
func (s *scanner) checkArgConvs(call *ast.CallExpr) {
	sig, ok := s.pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no conversion
			}
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if s.allocatingConv(arg) {
			s.add(arg.Pos(), "value-to-interface conversion at call argument")
		}
	}
}

func (s *scanner) scanAssign(n *ast.AssignStmt, depth int) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && s.isNonConstString(n.Lhs[0]) {
		s.add(n.Pos(), "non-constant string concatenation")
	}
	if n.Tok == token.ASSIGN && len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			lt := s.pass.TypesInfo.Types[lhs].Type
			if lt != nil && types.IsInterface(lt) && s.allocatingConv(n.Rhs[i]) {
				s.add(n.Rhs[i].Pos(), "value-to-interface conversion at assignment")
			}
		}
	}
	for _, e := range n.Lhs {
		s.scanExpr(e, depth)
	}
	for _, e := range n.Rhs {
		s.scanExpr(e, depth)
	}
}

func (s *scanner) scanReturn(n *ast.ReturnStmt, depth int) {
	sig := s.sigs[len(s.sigs)-1]
	if sig != nil && sig.Results() != nil && len(n.Results) == sig.Results().Len() {
		for i, res := range n.Results {
			if types.IsInterface(sig.Results().At(i).Type()) && s.allocatingConv(res) {
				s.add(res.Pos(), "value-to-interface conversion at return")
			}
		}
	}
	for _, e := range n.Results {
		s.scanExpr(e, depth)
	}
}

// allocatingConv reports whether implicitly converting arg to an interface
// type heap-allocates: true for concrete non-pointer-shaped values, false
// for constants, nil, interfaces, pointers, chans, maps and funcs.
func (s *scanner) allocatingConv(arg ast.Expr) bool {
	tv := s.pass.TypesInfo.Types[arg]
	if tv.Value != nil || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(tv.Type) {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return true
}

// isNonConstString reports whether e has string type and no constant value.
func (s *scanner) isNonConstString(e ast.Expr) bool {
	tv := s.pass.TypesInfo.Types[e]
	if tv.Value != nil || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// litType returns the composite literal's underlying type (resolving the
// elided types of nested literals).
func (s *scanner) litType(cl *ast.CompositeLit) types.Type {
	t := s.pass.TypesInfo.Types[cl].Type
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// captures returns the names of outer local variables the literal closes
// over. Package-level variables, struct fields and the literal's own
// parameters and locals do not force a heap allocation.
func (s *scanner) captures(lit *ast.FuncLit) []string {
	var names []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := s.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		seen[v] = true
		names = append(names, id.Name)
		return true
	})
	return names
}

// calleeOf resolves the *types.Func a call statically invokes, or nil for
// builtins and calls through function values.
func calleeOf(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
