// Package trace is the causal packet-tracing layer (DESIGN.md §14): a
// deterministic 1-in-N sampler stamps a trace context onto wire packets at
// their first hop, and every router on the path appends fixed-size hop
// records to a per-router ring. The contract that makes it safe to leave
// compiled into the data plane:
//
//   - Zero-alloc always: SampleID and Ring.Append are //gcopss:hotpath and
//     allocation-free whether or not the packet is sampled; the rings are
//     preallocated at Tracer construction.
//   - Deterministic under seed: whether a publication (origin, seq) is
//     sampled — and the trace ID it receives — is a pure function of
//     (origin, seq, every, seed). Two replays with the same seed trace the
//     same packets, so traces can be diffed across runs.
//   - Invisible when off: a nil *Tracer samples nothing, packets keep
//     TraceID == 0, and wire encodings are byte-identical to an untraced
//     build (wire omits the zero field).
//
// Rings use one uncontended mutex each rather than atomics: within a
// deterministic scheduler shard there is a single writer per ring, and the
// mutex only serializes Snapshot against that writer, so the race detector
// can certify reads-during-writes (see TestRingSnapshotRace).
package trace

import (
	"sort"
	"sync"
)

// HopEvent classifies what happened to a traced packet at a hop. The values
// mirror the flight-recorder event kinds on the same code paths.
type HopEvent uint8

const (
	// HopEncapsulate: a first-hop router wrapped the publication in an
	// Interest toward the RP.
	HopEncapsulate HopEvent = iota
	// HopRPDeliver: the RP decapsulated (or directly accepted) the
	// publication and matched it against the subscription table.
	HopRPDeliver
	// HopFanOut: the packet was forwarded out one face during multicast
	// distribution (one record per face).
	HopFanOut
	// HopRedirect: a migrated RP redirected the publication toward the
	// current RP.
	HopRedirect
	// HopDrop: the packet was dropped (no route, decode failure, ARQ
	// abandonment).
	HopDrop
	// HopRetransmit: the hop-by-hop ARQ retransmitted a control packet.
	HopRetransmit
)

// String returns the stable lower-case name used in trace exports.
func (e HopEvent) String() string {
	switch e {
	case HopEncapsulate:
		return "encapsulate"
	case HopRPDeliver:
		return "rp-deliver"
	case HopFanOut:
		return "fan-out"
	case HopRedirect:
		return "redirect"
	case HopDrop:
		return "drop"
	case HopRetransmit:
		return "retransmit"
	}
	return "unknown"
}

// Hop is one fixed-size record on a traced packet's path. Records are
// value types so ring appends never allocate.
type Hop struct {
	// TraceID is the sampled trace context the record belongs to.
	TraceID uint64
	// At is the sim-clock timestamp (UnixNano) the hop was processed at.
	At int64
	// Face is the router face involved (out-face for fan-out, in-face or
	// -1 where no face applies).
	Face int64
	// Seq is the publication sequence number, kept so exports can label
	// spans without chasing the origin packet.
	Seq uint64
	// Event says what happened at this hop.
	Event HopEvent
	// HopIndex is the packet's HopCount when the record was appended —
	// the position of this hop on the path.
	HopIndex uint32
}

// Ring is a bounded per-router hop-record buffer. One goroutine appends
// (the router's scheduler shard); Snapshot may be called concurrently from
// a debug endpoint or exporter. The mutex is uncontended in steady state.
type Ring struct {
	name string

	mu   sync.Mutex
	buf  []Hop // fixed capacity, preallocated
	next uint64
}

// Name returns the router name the ring was registered under.
func (r *Ring) Name() string { return r.name }

// Append records one hop. It is allocation-free: the record is copied into
// the preallocated buffer, overwriting the oldest entry when full.
//
//gcopss:hotpath
func (r *Ring) Append(h Hop) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = h
	r.next++
	r.mu.Unlock()
}

// Recorded returns the total number of hops appended, including those
// already overwritten.
func (r *Ring) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot returns the retained hop records oldest-first. Safe to call
// while the owning shard is appending.
func (r *Ring) Snapshot() []Hop {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := uint64(len(r.buf))
	n := r.next
	if n > size {
		out := make([]Hop, size)
		start := n % size
		copy(out, r.buf[start:])
		copy(out[size-start:], r.buf[:start])
		return out
	}
	return append([]Hop(nil), r.buf[:n]...)
}

// Tracer owns the sampling decision and the per-router rings. A nil Tracer
// is valid and samples nothing, so callers thread it unconditionally.
type Tracer struct {
	every   uint64
	seed    uint64
	ringCap int

	mu    sync.Mutex
	rings map[string]*Ring
}

// NewTracer builds a tracer sampling one in every `every` publications
// (every <= 0 disables sampling entirely; every == 1 traces everything).
// seed perturbs which publications are picked without changing the rate.
// ringCap bounds each router's hop ring (minimum 1).
func NewTracer(every int, seed int64, ringCap int) *Tracer {
	if ringCap < 1 {
		ringCap = 1
	}
	e := uint64(0)
	if every > 0 {
		e = uint64(every)
	}
	return &Tracer{
		every:   e,
		seed:    uint64(seed),
		ringCap: ringCap,
		rings:   make(map[string]*Ring),
	}
}

// Ring returns the hop ring registered for name, creating it on first use.
// Registration happens at router construction, never on the hot path.
func (t *Tracer) Ring(name string) *Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.rings[name]; ok {
		return r
	}
	r := &Ring{name: name, buf: make([]Hop, t.ringCap)}
	t.rings[name] = r
	return r
}

// Rings returns every registered ring sorted by router name, so exports
// and tests iterate deterministically.
func (t *Tracer) Rings() []*Ring {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Ring, 0, len(t.rings))
	for _, r := range t.rings {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// fnvOffset/fnvPrime are the 64-bit FNV-1a parameters; splitmix finalizes
// so the modulo sees well-mixed high and low bits.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func splitmix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// SampleID decides whether the publication (origin, seq) is traced and, if
// so, returns its nonzero trace ID; otherwise it returns 0. The decision is
// a pure function of (origin, seq, every, seed) — deterministic replays
// sample the same packets. Safe on a nil receiver (always 0).
//
//gcopss:hotpath
func (t *Tracer) SampleID(origin string, seq uint64) uint64 {
	if t == nil || t.every == 0 {
		return 0
	}
	h := uint64(fnvOffset)
	for i := 0; i < len(origin); i++ {
		h ^= uint64(origin[i])
		h *= fnvPrime
	}
	h ^= seq
	h *= fnvPrime
	h ^= t.seed
	h = splitmix(h)
	if h%t.every != 0 {
		return 0
	}
	if h == 0 {
		h = 1 // trace IDs are nonzero by contract; 0 means untraced
	}
	return h
}
