package obs

import (
	"bufio"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// WriteText renders every registered metric in the Prometheus text
// exposition format (text/plain; version=0.0.4): counters and gauges as
// single samples, histograms as cumulative _bucket/_sum/_count series,
// gauge families as labeled samples. Metrics are emitted in name order so
// scrapes diff cleanly.
//
// GaugeFunc callbacks run inside WriteText; hosts whose callbacks read
// non-atomic state must serialize the call (the daemon routes it through
// its event loop).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.kinds))
	for name := range r.kinds {
		names = append(names, name)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, name := range names {
		switch r.kinds[name] {
		case kindCounter:
			writeHeader(bw, name, "counter")
			writeSample(bw, name, "", "", formatUint(r.counters[name].Value()))
		case kindGauge:
			writeHeader(bw, name, "gauge")
			writeSample(bw, name, "", "", formatInt(r.gauges[name].Value()))
		case kindGaugeFunc:
			writeHeader(bw, name, "gauge")
			writeSample(bw, name, "", "", formatFloat(r.gaugeFuncs[name]()))
		case kindGaugeVec:
			writeHeader(bw, name, "gauge")
			values, gauges := r.gaugeVecs[name].snapshot()
			for i, val := range values {
				writeSample(bw, name, r.gaugeVecs[name].label, val, formatInt(gauges[i].Value()))
			}
		case kindHistogram:
			h := r.histograms[name]
			writeHeader(bw, name, "histogram")
			counts := h.Snapshot()
			var cum uint64
			for i, bound := range h.bounds {
				cum += counts[i]
				bw.WriteString(name)               //nolint:errcheck // flushed below
				bw.WriteString(`_bucket{le="`)     //nolint:errcheck
				bw.WriteString(formatFloat(bound)) //nolint:errcheck
				bw.WriteString(`"} `)              //nolint:errcheck
				bw.WriteString(formatUint(cum))    //nolint:errcheck
				bw.WriteByte('\n')                 //nolint:errcheck
			}
			cum += counts[len(counts)-1]
			bw.WriteString(name)                  //nolint:errcheck
			bw.WriteString(`_bucket{le="+Inf"} `) //nolint:errcheck
			bw.WriteString(formatUint(cum))       //nolint:errcheck
			bw.WriteByte('\n')                    //nolint:errcheck
			writeSample(bw, name+"_sum", "", "", formatFloat(h.Sum()))
			writeSample(bw, name+"_count", "", "", formatUint(h.Count()))
		}
	}
	r.mu.RUnlock()
	return bw.Flush()
}

func writeHeader(bw *bufio.Writer, name, typ string) {
	bw.WriteString("# TYPE ") //nolint:errcheck // flushed by WriteText
	bw.WriteString(name)      //nolint:errcheck
	bw.WriteByte(' ')         //nolint:errcheck
	bw.WriteString(typ)       //nolint:errcheck
	bw.WriteByte('\n')        //nolint:errcheck
}

func writeSample(bw *bufio.Writer, name, label, labelValue, value string) {
	bw.WriteString(name) //nolint:errcheck // flushed by WriteText
	if label != "" {
		bw.WriteByte('{')          //nolint:errcheck
		bw.WriteString(label)      //nolint:errcheck
		bw.WriteString(`="`)       //nolint:errcheck
		bw.WriteString(labelValue) //nolint:errcheck
		bw.WriteString(`"}`)       //nolint:errcheck
	}
	bw.WriteByte(' ')     //nolint:errcheck
	bw.WriteString(value) //nolint:errcheck
	bw.WriteByte('\n')    //nolint:errcheck
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }
func formatInt(v int64) string   { return strconv.FormatInt(v, 10) }
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// NewDebugMux builds the runtime debug endpoint shared by the daemons:
//
//	GET /metrics        Prometheus-style text exposition (via metrics)
//	GET /flight?n=64    last n flight-recorder events (via flight; all if n
//	                    is absent); 404 when flight is nil
//	GET /debug/trace    Chrome trace-event JSON of the causal packet trace
//	                    (via trace; open in Perfetto); 404 when trace is nil
//	GET /debug/pprof/*  the standard runtime profiles
//
// The callbacks let each host serialize access its own way: the TCP daemon
// routes both through its event loop, the broker writes its (atomic-only)
// registry directly.
func NewDebugMux(metrics func(io.Writer), flight func(io.Writer, int), trace func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics(w)
	})
	mux.HandleFunc("/flight", func(w http.ResponseWriter, req *http.Request) {
		if flight == nil {
			http.NotFound(w, req)
			return
		}
		n := 0
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		flight(w, n)
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, req *http.Request) {
		if trace == nil {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="gcopss-trace.json"`)
		trace(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
