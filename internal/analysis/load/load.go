// Package load type-checks the repository's packages for analysis without
// depending on golang.org/x/tools/go/packages.
//
// It shells out to `go list -json -export -deps` once: the go tool compiles
// every dependency into the build cache and reports the export-data file of
// each, which go/importer's gc importer can consume directly. Only the
// packages under analysis are parsed from source; all dependencies (stdlib
// included) are loaded from export data, so a full ./... load stays fast and
// works fully offline.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"github.com/icn-gaming/gcopss/internal/analysis"
)

// Package is one loaded, type-checked package.
type Package struct {
	// ImportPath is the canonical import path. For an in-package test
	// variant ("p [p.test]" in go list terms) it is the plain path p; test
	// variants replace their plain counterpart in the result set.
	ImportPath string
	Dir        string
	Unit       *analysis.Unit
}

// listPkg mirrors the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	GoFiles    []string
	ImportMap  map[string]string
}

// Packages loads and type-checks the packages matching the patterns,
// relative to dir. With includeTests, in-package and external test files are
// included (each package's test variant supersedes its plain build).
//
// The result is in dependency order: every package appears after the
// packages it imports (restricted to the result set). Drivers that share an
// analysis.FactStore across packages rely on this order — facts about a
// dependency are complete before any importer is analyzed.
func Packages(dir string, includeTests bool, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-json=ImportPath,Dir,Name,Export,Standard,DepOnly,ForTest,GoFiles,ImportMap", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	raw, err := runGoList(dir, args)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var roots []*listPkg
	hasTestVariant := map[string]bool{}
	for _, p := range raw {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Standard || p.DepOnly {
			continue
		}
		if p.Name == "main" && strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test binary main package
		}
		if p.ForTest != "" && !strings.Contains(p.ImportPath, "_test [") {
			hasTestVariant[p.ForTest] = true
		}
		q := p
		roots = append(roots, &q)
	}

	var out []*Package
	for _, p := range roots {
		if p.ForTest == "" && hasTestVariant[p.ImportPath] {
			continue // the test variant of this package supersedes it
		}
		pkg, err := check(p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return sortDeps(out), nil
}

// sortDeps topologically orders packages so every package follows the
// packages it imports (restricted to the analyzed set). Roots and import
// edges are walked in sorted path order, so the result is deterministic for
// a given package set.
func sortDeps(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		if _, ok := byPath[p.ImportPath]; !ok {
			byPath[p.ImportPath] = p
		}
	}
	roots := make([]*Package, len(pkgs))
	copy(roots, pkgs)
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	sorted := make([]*Package, 0, len(pkgs))
	state := map[*Package]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return // done, or a visiting cycle guard (cannot happen in valid Go)
		}
		state[p] = 1
		imps := p.Unit.Pkg.Imports()
		paths := make([]string, 0, len(imps))
		for _, imp := range imps {
			paths = append(paths, imp.Path())
		}
		sort.Strings(paths)
		for _, ip := range paths {
			if dep, ok := byPath[ip]; ok && dep != p {
				visit(dep)
			}
		}
		state[p] = 2
		sorted = append(sorted, p)
	}
	for _, p := range roots {
		visit(p)
	}
	return sorted
}

// ExportTable returns the import-path → export-data-file mapping for the
// patterns' full dependency closure (used by the analysistest harness to
// resolve stdlib imports of testdata packages).
func ExportTable(dir string, patterns ...string) (map[string]string, error) {
	args := append([]string{"list", "-json=ImportPath,Export", "-export", "-deps"}, patterns...)
	raw, err := runGoList(dir, args)
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, p := range raw {
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}

func runGoList(dir string, args []string) ([]listPkg, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []listPkg
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		out = append(out, p)
	}
	return out, nil
}

// check parses p's sources and type-checks them against export data.
func check(p *listPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	// The importer resolves each import through the package's ImportMap
	// first, so a test variant picks up test-specific builds of its
	// dependencies when go list says so.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := newInfo()
	// Strip the test-variant suffix so analyzers see the canonical path.
	path := p.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: path,
		Dir:        p.Dir,
		Unit:       &analysis.Unit{Fset: fset, Files: files, Pkg: pkg, TypesInfo: info},
	}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}
