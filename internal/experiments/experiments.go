// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V). Each experiment builds its workload from the
// synthetic-trace and topology packages, runs the relevant systems, and
// returns both structured results and a rendered text report.
//
// The Scale knob shrinks workloads proportionally so the full suite runs in
// seconds during development (and in testing.B benchmarks); Scale = 1
// reproduces the paper-sized runs.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/icn-gaming/gcopss/internal/gamemap"
	obstrace "github.com/icn-gaming/gcopss/internal/obs/trace"
	"github.com/icn-gaming/gcopss/internal/sim"
	"github.com/icn-gaming/gcopss/internal/topo"
	"github.com/icn-gaming/gcopss/internal/trace"
)

// Options controls experiment scale and reproducibility.
type Options struct {
	// Scale in (0, 1] multiplies workload sizes; 1 is paper scale.
	Scale float64
	// Seed drives all randomness.
	Seed int64
	// Workers is the number of scheduler shards the testbed experiments
	// (Fig. 4) run on. 0 or 1 selects sequential execution; any value
	// produces bit-identical results, so Workers is intentionally not part
	// of the Provenance replay line.
	Workers int
	// Trace, when non-nil, attaches causal packet tracing to the Fig. 4
	// G-COPSS routers; hop records land in the tracer's rings for Chrome
	// trace export. Tracing never changes results (sampled packets carry an
	// extra ID, virtual time is untouched), so like Workers it is not part
	// of Provenance.
	Trace *obstrace.Tracer
	// Profile enables the scheduler profiler on the Fig. 4 G-COPSS run;
	// the profile returns in Fig4Result.GCOPSS.Sched. Observational only —
	// not part of Provenance.
	Profile bool
}

// DefaultOptions runs at 5% scale — large enough for every effect in the
// paper to be visible, small enough for interactive use.
func DefaultOptions() Options {
	return Options{Scale: 0.05, Seed: 42}
}

// Provenance records the inputs that make a result replayable. Every result
// embeds one and leads its Render output with it, so a number in a report
// can always be traced back to the exact run that produced it.
type Provenance struct {
	Scale float64
	Seed  int64
}

func (o Options) provenance() Provenance { return Provenance{Scale: o.Scale, Seed: o.Seed} }

// String renders the replay line, e.g. "replay: -scale 0.05 -seed 42".
func (p Provenance) String() string {
	return fmt.Sprintf("replay: -scale %g -seed %d", p.Scale, p.Seed)
}

func (o *Options) normalize() {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// scaleInt scales a paper-sized count, with a floor.
func scaleInt(n int, scale float64, floor int) int {
	v := int(float64(n) * scale)
	if v < floor {
		v = floor
	}
	return v
}

// Workbench bundles the world, trace and simulator environment shared by
// the large-scale experiments.
type Workbench struct {
	Opts  Options
	World *gamemap.World
	Trace *trace.Trace
	Env   *sim.Env
}

// NewWorkbench builds the scaled paper workload: 5×5 map, 3,197 objects,
// 414 players, scaled update count, and a scaled Rocketfuel-like backbone.
func NewWorkbench(opts Options) (*Workbench, error) {
	opts.normalize()
	m, err := gamemap.NewGrid(5, 5)
	if err != nil {
		return nil, err
	}
	world := gamemap.NewWorld(m)
	if err := world.PopulateObjects(gamemap.PaperObjectCounts(), 0, rand.New(rand.NewSource(opts.Seed))); err != nil {
		return nil, err
	}

	cfg := trace.PaperConfig()
	cfg.Seed = opts.Seed
	cfg.TotalUpdates = scaleInt(cfg.TotalUpdates, opts.Scale, 20000)
	cfg.Duration = time.Duration(float64(cfg.Duration) * maxf(opts.Scale, 0.02))
	tr, err := trace.Generate(world, cfg)
	if err != nil {
		return nil, err
	}

	bb := topo.PaperBackbone()
	bb.Seed = opts.Seed
	if opts.Scale < 0.5 {
		bb.CoreRouters = scaleInt(bb.CoreRouters, maxf(opts.Scale*4, 0.4), 20)
		bb.EdgeRouters = scaleInt(bb.EdgeRouters, maxf(opts.Scale*4, 0.4), 60)
	}
	env, err := sim.NewEnv(world, tr, bb)
	if err != nil {
		return nil, err
	}
	return &Workbench{Opts: opts, World: world, Trace: tr, Env: env}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// peakUpdates returns the Table I / Fig. 5 workload: the first chunk of the
// trace replayed at peak rate with the evening ramp (mean inter-arrival
// 2.4 ms, ramping 3.2 → 1.6 ms). Under this ramp a single 3.3 ms RP is
// oversubscribed from the start, the hot half of a 2-RP split crosses
// saturation late in the run (Fig. 5b's "congestion after 70,000 packets"),
// and 3+ RPs stay stable.
func (w *Workbench) peakUpdates() []trace.Update {
	n := scaleInt(100_000, w.Opts.Scale, 20000)
	return sim.CompressRamp(sim.FirstN(w.Trace.Updates, n), 3.2, 1.6)
}

// steadyUpdates returns a constant-rate peak workload (Fig. 6).
func (w *Workbench) steadyUpdates(n int) []trace.Update {
	return sim.Compress(sim.FirstN(w.Trace.Updates, n), 2.4)
}

// gb formats bytes as GB.
func gb(v float64) string { return fmt.Sprintf("%.3f", v/1e9) }
