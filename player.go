package gcopss

import (
	"fmt"
	"sort"
	"time"

	"github.com/icn-gaming/gcopss/internal/broker"
	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/flowctl"
	"github.com/icn-gaming/gcopss/internal/gamemap"
	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// Player is a participant attached to the fabric. It publishes updates to
// its current position's CD and receives everything its position can see,
// per the paper's hierarchical visibility rules.
type Player struct {
	net    *Network
	id     string
	router string
	face   ndn.FaceID
	player *gamemap.Player
	seq    uint64

	updates chan Update
	fetch   fetchState
	// qrReceived accumulates completed QR object counts across pumpFetch
	// rounds during one MoveTo.
	qrReceived int
}

// fetchState routes snapshot packets to an in-progress MoveTo or Resume.
type fetchState struct {
	qr     map[string]*broker.QRFetch     // by leaf key
	cyclic map[string]*broker.CyclicFetch // by leaf key
	out    []*wire.Packet
	onData func(*wire.Packet) // raw Data tap (Resume's catch-up queries)
}

// Join attaches a player at a router, positioned in the given area
// ("/1/2" for a zone, "/1" to fly over region 1, "/" or "" for the top).
// The player's subscriptions are installed before Join returns.
func (n *Network) Join(id, router, areaPath string) (*Player, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("gcopss: network closed")
	}
	r, ok := n.routers[router]
	if !ok {
		return nil, fmt.Errorf("gcopss: unknown router %q", router)
	}
	if _, dup := n.players[id]; dup {
		return nil, fmt.Errorf("gcopss: duplicate player %q", id)
	}
	area, err := n.lookupArea(areaPath)
	if err != nil {
		return nil, err
	}
	face := n.allocFace(router)
	r.AddFace(face, core.FaceClient)
	p := &Player{
		net:     n,
		id:      id,
		router:  router,
		face:    face,
		player:  gamemap.NewPlayer(id, area),
		updates: make(chan Update, updateBuffer),
	}
	n.wires[wireKey{router, face}] = wireDest{endpoint: id, kind: endpointPlayer}
	n.players[id] = p
	n.send(router, face, &wire.Packet{Type: wire.TypeSubscribe, CDs: p.player.SubscriptionCDs()})
	return p, nil
}

// ID returns the player's identifier.
func (p *Player) ID() string { return p.id }

// Area returns the player's current area path ("" is the world).
func (p *Player) Area() string { return p.player.Area().CD().Key() }

// Updates delivers received game events. The channel is closed when the
// player leaves or the network shuts down; slow consumers lose the oldest
// pending updates rather than blocking the fabric.
func (p *Player) Updates() <-chan Update { return p.updates }

// Publish pushes an update about an object at the player's position. The
// update reaches every player whose position can see the player's area.
func (p *Player) Publish(objectID string, data []byte) error {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	if p.net.closed {
		return fmt.Errorf("gcopss: network closed")
	}
	p.seq++
	pkt := &wire.Packet{
		Type:    wire.TypeMulticast,
		CDs:     []cd.CD{p.player.PublishCD()},
		Origin:  p.id,
		Seq:     p.seq,
		Payload: broker.EncodeUpdate(objectID, data),
		SentAt:  time.Now().UnixNano(),
	}
	p.net.send(p.router, p.face, pkt)
	return nil
}

// PublishTo publishes to an explicit area path the player can see (e.g. a
// soldier shooting at a plane overhead publishes to "/1/").
func (p *Player) PublishTo(areaPath, objectID string, data []byte) error {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	area, err := p.net.lookupArea(areaPath)
	if err != nil {
		return err
	}
	p.seq++
	pkt := &wire.Packet{
		Type:    wire.TypeMulticast,
		CDs:     []cd.CD{area.LeafCD()},
		Origin:  p.id,
		Seq:     p.seq,
		Payload: broker.EncodeUpdate(objectID, data),
		SentAt:  time.Now().UnixNano(),
	}
	p.net.send(p.router, p.face, pkt)
	return nil
}

// handlePacket runs under the network lock.
//
//gcopss:locked mu
func (p *Player) handlePacket(pkt *wire.Packet) {
	switch pkt.Type {
	case wire.TypeMulticast:
		c, err := pkt.CD()
		if err != nil {
			return // malformed multicast: drop, never crash the client
		}
		// Snapshot data channels feed an in-progress cyclic fetch.
		if leaf, ok := broker.LeafOfDataCD(c); ok {
			if f := p.fetch.cyclic[leaf.Key()]; f != nil {
				out, _ := f.HandleMulticast(pkt)
				p.fetch.out = append(p.fetch.out, out...)
			}
			return
		}
		if pkt.Origin == p.id || pkt.Origin == core.FlushOrigin {
			return // own echo, or a migration flush marker
		}
		objID, body, ok := broker.DecodeUpdate(pkt.Payload)
		if !ok {
			objID, body = "", pkt.Payload
		}
		u := Update{
			CD:       c.Key(),
			Origin:   pkt.Origin,
			ObjectID: objID,
			Data:     append([]byte(nil), body...),
			Seq:      pkt.Seq,
		}
		select {
		case p.updates <- u:
		default:
			// Drop the oldest to make room: fresh state wins.
			select {
			case <-p.updates:
				p.net.dropped++
			default:
			}
			select {
			case p.updates <- u:
			default:
				p.net.dropped++
			}
		}
	case wire.TypeData:
		if p.fetch.onData != nil {
			p.fetch.onData(pkt)
		}
		// Sorted keys: the order fetches consume a Data packet decides the
		// order of their follow-up Interests, which must not depend on map
		// iteration order.
		keys := make([]string, 0, len(p.fetch.qr))
		for key := range p.fetch.qr {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			f := p.fetch.qr[key]
			out, done := f.HandleDataAt(time.Now(), pkt)
			p.fetch.out = append(p.fetch.out, out...)
			if done {
				p.qrReceived += f.Received()
				delete(p.fetch.qr, key)
			}
		}
	}
}

// SnapshotMode selects how MoveTo downloads unseen areas.
type SnapshotMode int

// Snapshot modes. Enum starts at 1 so the zero value selects the default
// (query-response).
const (
	// SnapshotQueryResponse fetches each changed object with pipelined NDN
	// Interests.
	SnapshotQueryResponse SnapshotMode = iota + 1
	// SnapshotCyclic joins the broker's cyclic multicast sessions.
	SnapshotCyclic
)

// MoveReport describes a completed movement.
type MoveReport struct {
	// Type is the paper's movement category label.
	Type string
	// Subscribed and Unsubscribed are the CD delta applied.
	Subscribed, Unsubscribed []string
	// SnapshotAreas is the number of unseen leaf areas downloaded.
	SnapshotAreas int
	// Objects is the number of snapshot objects received.
	Objects int
}

// MoveTo relocates the player: it unsubscribes the stale CDs, subscribes
// the new ones, and — when a broker serves the unseen areas — downloads
// their snapshots with the selected mode (zero value = query-response).
func (p *Player) MoveTo(areaPath string, mode SnapshotMode) (*MoveReport, error) {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	if p.net.closed {
		return nil, fmt.Errorf("gcopss: network closed")
	}
	dest, err := p.net.lookupArea(areaPath)
	if err != nil {
		return nil, err
	}
	res, err := p.player.Move(dest)
	if err != nil {
		return nil, fmt.Errorf("gcopss: move: %w", err)
	}
	report := &MoveReport{Type: res.Type.String(), SnapshotAreas: len(res.Snapshots)}
	for _, c := range res.Unsubscribe {
		report.Unsubscribed = append(report.Unsubscribed, c.Key())
	}
	for _, c := range res.Subscribe {
		report.Subscribed = append(report.Subscribed, c.Key())
	}
	if len(res.Unsubscribe) > 0 {
		p.net.send(p.router, p.face, &wire.Packet{Type: wire.TypeUnsubscribe, CDs: res.Unsubscribe})
	}
	if len(res.Subscribe) > 0 {
		p.net.send(p.router, p.face, &wire.Packet{Type: wire.TypeSubscribe, CDs: res.Subscribe})
	}
	if len(res.Snapshots) > 0 && len(p.net.brokers) > 0 {
		n, err := p.fetchSnapshots(res.Snapshots, mode)
		if err != nil {
			return nil, err
		}
		report.Objects = n
	}
	return report, nil
}

// fetchSnapshots downloads the given leaves. Caller holds the lock.
//
//gcopss:locked mu
func (p *Player) fetchSnapshots(leaves []cd.CD, mode SnapshotMode) (int, error) {
	if mode == 0 {
		mode = SnapshotQueryResponse
	}
	p.fetch = fetchState{
		qr:     make(map[string]*broker.QRFetch),
		cyclic: make(map[string]*broker.CyclicFetch),
	}
	var initial []*wire.Packet
	for _, leaf := range leaves {
		switch mode {
		case SnapshotQueryResponse:
			f := broker.NewFetch(leaf, flowctl.WithWindow(1, 15, 32))
			p.fetch.qr[leaf.Key()] = f
			initial = append(initial, f.StartAt(time.Now())...)
		case SnapshotCyclic:
			f := broker.NewCyclicFetch(leaf, p.id)
			p.fetch.cyclic[leaf.Key()] = f
			initial = append(initial, f.Start()...)
		default:
			return 0, fmt.Errorf("gcopss: unknown snapshot mode %d", mode)
		}
	}
	p.net.send(p.router, p.face, initial...)
	p.pumpFetch()

	// Cyclic sessions need broker rotation ticks; drive them until every
	// fetch completes (bounded: each tick advances every session).
	for guard := 0; len(p.fetch.cyclic) > 0 && p.anyCyclicPending(); guard++ {
		if guard > 100000 {
			return 0, fmt.Errorf("gcopss: cyclic snapshot fetch did not converge")
		}
		// Brokers tick in sorted-name order so the injected rotation packets
		// are sequenced identically on every run.
		names := make([]string, 0, len(p.net.brokers))
		for name := range p.net.brokers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bh := p.net.brokers[name]
			for _, out := range bh.b.Tick() {
				p.net.inject(bh.router, bh.face, out)
			}
		}
		p.net.drain()
		p.pumpFetch()
	}

	total := 0
	for _, f := range p.fetch.cyclic {
		total += f.Received()
	}
	// Completed QR fetches were removed from the map as they finished; the
	// count accumulates in pumpFetch via qrReceived.
	total += p.qrReceived
	p.qrReceived = 0
	p.fetch = fetchState{}
	return total, nil
}

// pumpFetch flushes packets produced by fetch handlers. Caller holds the
// lock.
func (p *Player) pumpFetch() {
	for len(p.fetch.out) > 0 {
		out := p.fetch.out
		p.fetch.out = nil
		p.net.send(p.router, p.face, out...)
	}
	for key, f := range p.fetch.qr {
		if f.Done() {
			p.qrReceived += f.Received()
			delete(p.fetch.qr, key)
		}
	}
}

func (p *Player) anyCyclicPending() bool {
	for _, f := range p.fetch.cyclic {
		if !f.Done() {
			return true
		}
	}
	return false
}

// Suspend takes the player offline: its subscriptions are withdrawn so the
// fabric stops carrying traffic for it, but its position and update channel
// survive for a later Resume.
func (p *Player) Suspend() error {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	if p.net.closed {
		return fmt.Errorf("gcopss: network closed")
	}
	p.net.send(p.router, p.face, &wire.Packet{
		Type: wire.TypeUnsubscribe,
		CDs:  p.player.SubscriptionCDs(),
	})
	return nil
}

// ResumeReport describes what a returning player caught up on.
type ResumeReport struct {
	// Missed are the updates logged by brokers for the player's visible
	// areas while it was offline (bounded by the brokers' log size),
	// oldest first per area.
	Missed []Update
}

// Resume brings a suspended player back online: it resubscribes and, when a
// broker serves its visible areas, fetches the recent-update logs so the
// player learns what happened while away (the paper's offline-player
// support).
func (p *Player) Resume() (*ResumeReport, error) {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	if p.net.closed {
		return nil, fmt.Errorf("gcopss: network closed")
	}
	p.net.send(p.router, p.face, &wire.Packet{
		Type: wire.TypeSubscribe,
		CDs:  p.player.SubscriptionCDs(),
	})
	report := &ResumeReport{}
	if len(p.net.brokers) == 0 {
		return report, nil
	}
	for _, leaf := range p.player.Area().VisibleLeaves() {
		leaf := leaf
		var payload []byte
		got := false
		p.fetch = fetchState{}
		collect := func(pkt *wire.Packet) {
			if pkt.Type == wire.TypeData && pkt.Name == broker.RecentName(leaf) {
				payload = pkt.Payload
				got = true
			}
		}
		p.fetch.onData = collect
		p.net.send(p.router, p.face, &wire.Packet{
			Type: wire.TypeInterest,
			Name: broker.RecentName(leaf),
		})
		p.fetch = fetchState{}
		if !got {
			continue
		}
		for _, rec := range broker.ParseRecent(payload) {
			if rec.Origin == p.id {
				continue
			}
			report.Missed = append(report.Missed, Update{
				CD:       leaf.Key(),
				Origin:   rec.Origin,
				ObjectID: rec.ObjID,
				Seq:      rec.Seq,
			})
		}
	}
	return report, nil
}

// Leave detaches the player and closes its update channel.
func (p *Player) Leave() error {
	p.net.mu.Lock()
	defer p.net.mu.Unlock()
	if p.net.closed {
		return nil
	}
	if _, ok := p.net.players[p.id]; !ok {
		return nil
	}
	p.net.send(p.router, p.face, &wire.Packet{
		Type: wire.TypeUnsubscribe,
		CDs:  p.player.SubscriptionCDs(),
	})
	r := p.net.routers[p.router]
	r.RemoveFace(p.face)
	delete(p.net.wires, wireKey{p.router, p.face})
	delete(p.net.players, p.id)
	close(p.updates)
	return nil
}
