// Command gcopssd runs one G-COPSS router daemon over TCP.
//
// Each daemon is a full Fig. 2 router: an NDN engine (FIB/PIT/Content
// Store) glued to the G-COPSS pub/sub engine (Subscription Table, RP
// logic). Connections from peers become faces; the handshake declares
// whether the peer is another router or an end host.
//
// A three-node deployment with an RP on the first node:
//
//	gcopssd -name R1 -listen :7001 -rp /rp1 -rp-prefixes "/,/1,/2,/3,/4,/5"
//	gcopssd -name R2 -listen :7002 -connect localhost:7001
//	gcopssd -name R3 -listen :7003 -connect localhost:7002
//
// Players then attach with gplayer.
//
// With -debug, the daemon serves its runtime telemetry over HTTP:
// /metrics (Prometheus text exposition), /flight?n= (packet-path flight
// recorder dump), /debug/trace (Chrome trace-event JSON of the causal
// packet trace when -trace-sample is on; open in Perfetto) and
// /debug/pprof/*:
//
//	gcopssd -name R1 -listen :7001 -debug :7101 -trace-sample 16
//	curl http://localhost:7101/metrics
//	curl http://localhost:7101/debug/trace > trace.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/faultnet"
	"github.com/icn-gaming/gcopss/internal/obs"
	"github.com/icn-gaming/gcopss/internal/obs/trace"
	"github.com/icn-gaming/gcopss/internal/transport"
)

type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	if err := run(); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "gcopssd:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name      = flag.String("name", "R1", "router name")
		listen    = flag.String("listen", ":7000", "listen address for faces")
		rpName    = flag.String("rp", "", "host an RP under this name (e.g. /rp1)")
		rpPrefix  = flag.String("rp-prefixes", "/,/1,/2,/3,/4,/5", "comma-separated CD prefixes the RP serves")
		debugAddr = flag.String("debug", "", "serve /metrics, /flight, /debug/trace and /debug/pprof on this address (empty = off)")
		flightCap = flag.Int("flight-events", 1024, "flight recorder capacity in events (0 = off)")
		traceRate = flag.Int("trace-sample", 0, "sample 1 in N publications for causal tracing, dumped at /debug/trace (0 = off)")
		traceSeed = flag.Int64("trace-seed", 42, "sampling seed for -trace-sample")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		faultSpec = flag.String("fault-spec", "", "inject egress faults, e.g. 'loss=0.05,reorder=0.2' or 'face2:only=ctl,loss=0.1' (empty = off)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault injector's randomness")
		connects  multiFlag
	)
	flag.Var(&connects, "connect", "neighbor router address (repeatable)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	root := obs.NewLogger(os.Stderr, level)
	lg := obs.Scoped(root, "gcopssd").With("router", *name)

	ropts := []core.Option{core.WithFlightRecorder(obs.NewFlight(*flightCap))}
	if *traceRate > 0 {
		ropts = append(ropts, core.WithTracer(trace.NewTracer(*traceRate, *traceSeed, 4096)))
	}
	d := transport.NewDaemon(*name, ropts...)
	d.SetLogger(obs.Printf(obs.Scoped(root, "daemon")))
	if *traceRate > 0 {
		lg.Info("causal tracing armed", "sample", fmt.Sprintf("1/%d", *traceRate), "seed", fmt.Sprint(*traceSeed))
	}
	if *faultSpec != "" {
		spec, err := faultnet.ParseSpec(*faultSpec)
		if err != nil {
			return fmt.Errorf("bad -fault-spec: %w", err)
		}
		in := faultnet.New(spec, *faultSeed)
		in.SetEpoch(time.Now())
		in.Instrument(d.Router().Obs())
		d.SetFaults(in)
		lg.Info("fault injection armed", "spec", spec.String(), "seed", fmt.Sprint(*faultSeed))
	}
	addr, err := d.Listen(*listen)
	if err != nil {
		return err
	}
	lg.Info("listening", "addr", addr.String())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, peer := range connects {
		if err := d.ConnectRouter(peer); err != nil {
			return fmt.Errorf("connect %s: %w", peer, err)
		}
		lg.Info("linked to neighbor", "peer", peer)
	}

	errc := make(chan error, 1)
	go func() { errc <- d.Run(ctx) }()

	if *debugAddr != "" {
		da, err := d.ServeDebug(ctx, *debugAddr)
		if err != nil {
			return err
		}
		lg.Info("debug endpoint up", "addr", da.String())
	}

	if *rpName != "" {
		// Give the neighbor links a moment to attach before flooding.
		time.Sleep(300 * time.Millisecond)
		var prefixes []cd.CD
		for _, p := range strings.Split(*rpPrefix, ",") {
			c, err := cd.Parse(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("bad RP prefix %q: %w", p, err)
			}
			prefixes = append(prefixes, c)
		}
		if err := d.BecomeRP(copss.RPInfo{Name: *rpName, Prefixes: prefixes, Seq: 1}); err != nil {
			return err
		}
		lg.Info("hosting RP", "rp", *rpName, "prefixes", fmt.Sprint(prefixes))
	}

	return <-errc
}
