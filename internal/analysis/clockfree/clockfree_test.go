package clockfree

import (
	"testing"

	"github.com/icn-gaming/gcopss/internal/analysis/analysistest"
)

func TestClockfree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), Analyzer,
		"internal/core/clocky", // true positives + //lint:allow escape hatch
		"other/clean",          // wall clock is fine outside the core
	)
}
