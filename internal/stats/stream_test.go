package stats

import (
	"math"
	"testing"
)

func TestStreamMoments(t *testing.T) {
	s := NewStream(0)
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Variance() != 0 {
		t.Error("empty stream should be all zeros")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if s.N() != 100 || s.Sum() != 5050 {
		t.Errorf("N=%d Sum=%f", s.N(), s.Sum())
	}
	if s.Mean() != 50.5 {
		t.Errorf("Mean = %f", s.Mean())
	}
	if s.Min() != 1 || s.Max() != 100 {
		t.Errorf("Min/Max = %f/%f", s.Min(), s.Max())
	}
	// Population variance of 1..100 is (100²-1)/12 = 833.25.
	if got := s.Variance(); math.Abs(got-833.25) > 1e-6 {
		t.Errorf("Variance = %f", got)
	}
	// Without a reservoir, Quantile falls back to the mean.
	if s.Quantile(0.9) != s.Mean() {
		t.Error("no-reservoir quantile should be the mean")
	}
}

func TestStreamReservoirQuantiles(t *testing.T) {
	s := NewStream(1000)
	for i := 0; i < 100000; i++ {
		s.Add(float64(i % 1000))
	}
	q50 := s.Quantile(0.5)
	if q50 < 350 || q50 > 650 {
		t.Errorf("median estimate %f far from 500", q50)
	}
	q95 := s.Quantile(0.95)
	if q95 < 850 {
		t.Errorf("p95 estimate %f far from 950", q95)
	}
	if got := s.Sample().N(); got != 1000 {
		t.Errorf("reservoir size = %d", got)
	}
}

func TestStreamMatchesSample(t *testing.T) {
	var sample Sample
	stream := NewStream(0)
	vals := []float64{3.5, -2, 8, 0, 11.25, 7}
	for _, v := range vals {
		sample.Add(v)
		stream.Add(v)
	}
	if sample.Mean() != stream.Mean() {
		t.Errorf("mean mismatch %f vs %f", sample.Mean(), stream.Mean())
	}
	if sample.Min() != stream.Min() || sample.Max() != stream.Max() {
		t.Error("min/max mismatch")
	}
}
