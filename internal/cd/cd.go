// Package cd implements hierarchical Content Descriptors (CDs), the naming
// primitive of COPSS and G-COPSS.
//
// A CD is a sequence of name components, written with "/" separators:
//
//	/            the root (empty sequence); subscribing to it matches everything
//	/1           region 1
//	/1/2         zone 2 of region 1
//	/1/          the "airspace leaf" of region 1 (trailing empty component)
//
// The trailing empty component encodes the paper's convention that every
// non-leaf area of the game map is also represented by a leaf node (the area
// "above" it, e.g. where planes fly). It may only appear as the final
// component.
package cd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrInvalid reports a malformed CD string or component sequence.
var ErrInvalid = errors.New("cd: invalid content descriptor")

// CD is an immutable hierarchical content descriptor. The zero value is the
// root descriptor.
//
// Internally a CD stores its canonical string form; components are joined
// with '/'. The root is the empty string. Non-root CDs start with '/'.
type CD struct {
	s string
}

// Root returns the root CD (empty component sequence). A subscription to
// Root matches every publication.
func Root() CD { return CD{} }

// New builds a CD from components. An empty component is permitted only in
// the final position (the airspace-leaf marker).
func New(components ...string) (CD, error) {
	for i, c := range components {
		if strings.ContainsRune(c, '/') {
			return CD{}, fmt.Errorf("%w: component %q contains '/'", ErrInvalid, c)
		}
		if c == "" && i != len(components)-1 {
			return CD{}, fmt.Errorf("%w: empty component not in final position", ErrInvalid)
		}
	}
	if len(components) == 0 {
		return CD{}, nil
	}
	return CD{s: "/" + strings.Join(components, "/")}, nil
}

// MustNew is New but panics on error. Intended for constants and tests.
func MustNew(components ...string) CD {
	c, err := New(components...)
	if err != nil {
		panic(err)
	}
	return c
}

// Parse converts the textual form back to a CD. Accepted forms:
//
//	""      → root
//	"/"     → the top airspace leaf (one empty component)
//	"/a/b"  → ["a" "b"]
//	"/a/"   → ["a" ""]
func Parse(s string) (CD, error) {
	if s == "" {
		return CD{}, nil
	}
	if !strings.HasPrefix(s, "/") {
		return CD{}, fmt.Errorf("%w: %q does not start with '/'", ErrInvalid, s)
	}
	comps := strings.Split(s[1:], "/")
	return New(comps...)
}

// MustParse is Parse but panics on error.
func MustParse(s string) CD {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// String returns the canonical textual form (see Parse).
func (c CD) String() string {
	if c.s == "" {
		return "(root)"
	}
	return c.s
}

// Key returns the canonical encoding used as a map key and on the wire. It
// differs from String only for the root ("" instead of "(root)").
func (c CD) Key() string { return c.s }

// FromKey reconstructs a CD from its Key form.
func FromKey(k string) (CD, error) { return Parse(k) }

// Components returns a copy of the component sequence.
func (c CD) Components() []string {
	if c.s == "" {
		return nil
	}
	return strings.Split(c.s[1:], "/")
}

// Len returns the number of components.
func (c CD) Len() int {
	if c.s == "" {
		return 0
	}
	return strings.Count(c.s, "/")
}

// IsRoot reports whether c is the root descriptor.
func (c CD) IsRoot() bool { return c.s == "" }

// IsAirspace reports whether c ends with the airspace-leaf marker (an empty
// final component), e.g. "/1/" or "/".
func (c CD) IsAirspace() bool {
	return c.s != "" && strings.HasSuffix(c.s, "/")
}

// Parent returns the CD with the final component removed. The parent of the
// root is the root.
func (c CD) Parent() CD {
	if c.s == "" {
		return CD{}
	}
	i := strings.LastIndex(c.s, "/")
	return CD{s: c.s[:i]}
}

// Child extends c with one more component. Extending an airspace leaf is an
// error, as is adding a non-final empty component later.
func (c CD) Child(component string) (CD, error) {
	if c.IsAirspace() {
		return CD{}, fmt.Errorf("%w: cannot extend airspace leaf %v", ErrInvalid, c)
	}
	if strings.ContainsRune(component, '/') {
		return CD{}, fmt.Errorf("%w: component %q contains '/'", ErrInvalid, component)
	}
	return CD{s: c.s + "/" + component}, nil
}

// MustChild is Child but panics on error.
func (c CD) MustChild(component string) CD {
	ch, err := c.Child(component)
	if err != nil {
		panic(err)
	}
	return ch
}

// Airspace returns the airspace leaf of c (c plus a trailing empty
// component). Calling Airspace on an airspace leaf is an error.
func (c CD) Airspace() (CD, error) { return c.Child("") }

// MustAirspace is Airspace but panics on error.
func (c CD) MustAirspace() CD { return c.MustChild("") }

// HasPrefix reports whether p is a prefix of c (component-wise, including
// p == c). Every CD has the root as a prefix.
func (c CD) HasPrefix(p CD) bool {
	if p.s == "" {
		return true
	}
	if !strings.HasPrefix(c.s, p.s) {
		return false
	}
	// Component boundary: either exact match or the next byte is '/'.
	// An airspace prefix like "/1/" is a string prefix of "/1/2" but NOT a
	// component prefix (components ["1",""] vs ["1","2"]).
	if len(c.s) == len(p.s) {
		return true
	}
	if strings.HasSuffix(p.s, "/") { // airspace leaf: only exact match allowed
		return false
	}
	return c.s[len(p.s)] == '/'
}

// Prefixes returns all prefixes of c from the root up to and including c
// itself, shortest first.
func (c CD) Prefixes() []CD {
	return c.AppendPrefixes(nil)
}

// AppendPrefixes appends the prefixes of c (root first, c last) to dst and
// returns the extended slice. Passing a reused buffer keeps the per-match
// hot paths allocation-free.
func (c CD) AppendPrefixes(dst []CD) []CD {
	out := append(dst, Root())
	for i := 1; i < len(c.s); i++ {
		if c.s[i] == '/' {
			out = append(out, CD{s: c.s[:i]})
		}
	}
	if c.s != "" {
		out = append(out, c)
	}
	return out
}

// Relation classifies how two CDs relate in the hierarchy.
type Relation int

// Relations between two CDs. Enum starts at 1 so the zero value is invalid.
const (
	// RelationEqual means the CDs are identical.
	RelationEqual Relation = iota + 1
	// RelationAncestor means the receiver is a proper prefix of the argument.
	RelationAncestor
	// RelationDescendant means the argument is a proper prefix of the receiver.
	RelationDescendant
	// RelationDisjoint means neither is a prefix of the other.
	RelationDisjoint
)

// String implements fmt.Stringer.
func (r Relation) String() string {
	switch r {
	case RelationEqual:
		return "equal"
	case RelationAncestor:
		return "ancestor"
	case RelationDescendant:
		return "descendant"
	case RelationDisjoint:
		return "disjoint"
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// Relate returns the relation of c to other.
func (c CD) Relate(other CD) Relation {
	switch {
	case c.s == other.s:
		return RelationEqual
	case other.HasPrefix(c):
		return RelationAncestor
	case c.HasPrefix(other):
		return RelationDescendant
	default:
		return RelationDisjoint
	}
}

// Intersects reports whether the subtrees rooted at c and other overlap,
// i.e. one is a (possibly equal) prefix of the other. This is the condition
// under which a subscription to one must be routed toward an RP serving the
// other.
func (c CD) Intersects(other CD) bool {
	return c.HasPrefix(other) || other.HasPrefix(c)
}

// Compare orders CDs lexicographically by component sequence. It returns
// -1, 0 or +1.
func (c CD) Compare(other CD) int {
	return strings.Compare(c.s, other.s)
}

// Sort orders a slice of CDs in place (lexicographic component order).
func Sort(cds []CD) {
	sort.Slice(cds, func(i, j int) bool { return cds[i].Compare(cds[j]) < 0 })
}
