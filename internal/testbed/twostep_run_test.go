package testbed

import (
	"testing"
)

func TestDeliveryComparisonShape(t *testing.T) {
	results, err := RunDeliveryComparison([]int{150, 20000}, 10, 0.3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byKey := map[string]DeliveryModeResult{}
	for _, r := range results {
		byKey[r.Mode.String()+"/"+itoa(r.PayloadBytes)] = r
		if r.Deliveries == 0 || r.MeanLatencyMs <= 0 || r.NetworkBytes <= 0 {
			t.Fatalf("degenerate cell: %+v", r)
		}
	}

	// Small game updates (the paper's regime): one-step is faster — no pull
	// round trip — and not meaningfully heavier.
	small1 := byKey["one-step/150"]
	small2 := byKey["two-step/150"]
	if small1.MeanLatencyMs >= small2.MeanLatencyMs {
		t.Errorf("one-step small %.2fms not faster than two-step %.2fms",
			small1.MeanLatencyMs, small2.MeanLatencyMs)
	}

	// Large payloads with mostly-uninterested subscribers: two-step carries
	// far fewer bytes (snippets to everyone, payloads only to the 30%).
	big1 := byKey["one-step/20000"]
	big2 := byKey["two-step/20000"]
	if big2.NetworkBytes >= big1.NetworkBytes {
		t.Errorf("two-step large %.0fB not lighter than one-step %.0fB",
			big2.NetworkBytes, big1.NetworkBytes)
	}
	// One-step pushed to all 10 subscribers; two-step delivered to the 3
	// interested ones.
	if big1.Deliveries <= big2.Deliveries {
		t.Errorf("delivery counts: one-step %d, two-step %d", big1.Deliveries, big2.Deliveries)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
