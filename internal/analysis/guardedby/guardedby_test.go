package guardedby

import (
	"testing"

	"github.com/icn-gaming/gcopss/internal/analysis/analysistest"
)

func TestGuardedby(t *testing.T) {
	// statelib is listed first so its field facts are visible when guarded
	// (which imports it) is analyzed — the dependency-order contract.
	analysistest.Run(t, analysistest.TestData(), Analyzer,
		"statelib", // exports the Box.Val guard fact, no diagnostics of its own
		"guarded",  // lock-first, escape hatches, violations, bad annotations
	)
}
