package main

import "math/rand"

// Package main may use the global source: a binary's top level is where the
// seed is decided.
func main() {
	_ = rand.Intn(10)
}
