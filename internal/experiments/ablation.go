package experiments

import (
	"fmt"
	"strings"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/rangesub"
	"github.com/icn-gaming/gcopss/internal/stats"
	"github.com/icn-gaming/gcopss/internal/testbed"
)

// AblationResult quantifies the design choices DESIGN.md calls out:
//
//  1. Forwarding-decision cost of the hierarchical-CD Subscription Table
//     (exact, Bloom, Bloom with the first-hop hash optimization) versus a
//     Mercury-style coordinate-range table — the related-work claim that
//     range matching "increases the computation overhead for forwarding".
//  2. Delivery precision: the range system's over-delivery factor caused by
//     2D ranges being unable to express altitude layers.
//  3. The multi-layer map's subscription-state savings versus flattened
//     per-leaf subscriptions ("CDs ... could be aggregated").
type AblationResult struct {
	Provenance Provenance

	// Per-decision forwarding costs (ns), matching one zone update against
	// the 62-player microbenchmark subscription population.
	ExactNs, BloomNs, BloomPrehashNs, RangeNs float64

	// Delivery counts for one representative publication set.
	CDDeliveries, RangeDeliveries int

	// Subscription-state comparison over the 414-player population.
	HierarchicalEntries, FlattenedEntries int
	HierarchicalRPSize, FlattenedRPSize   int

	// Delivery-mode comparison (one-step vs two-step COPSS) on the testbed.
	DeliveryModes []testbed.DeliveryModeResult
}

// Ablation runs all three studies.
func Ablation(w *Workbench) (*AblationResult, error) {
	res := &AblationResult{Provenance: w.Opts.provenance()}
	m := w.World.Map

	// --- Study 1 & 2: forwarding cost and precision at one node carrying
	// the 62-player population (2 players per area).
	exact := copss.NewST(copss.MatchExact)
	blm := copss.NewST(copss.MatchBloom)
	geo := rangesub.NewGeometry(m)
	rng := rangesub.NewTable()
	face := ndn.FaceID(0)
	for _, a := range m.Areas() {
		for j := 0; j < 2; j++ {
			face++
			for _, c := range a.SubscriptionCDs() {
				exact.Add(face, c)
				blm.Add(face, c)
			}
			for _, r := range geo.AoIRects(a) {
				if err := rng.Subscribe(face, r); err != nil {
					return nil, fmt.Errorf("experiments: ablation: %w", err)
				}
			}
		}
	}
	zone, ok := m.Area(cd.MustParse("/3/4"))
	if !ok {
		return nil, fmt.Errorf("experiments: ablation: map has no /3/4")
	}
	pub := zone.PublishCD()
	x, y, _ := geo.PointOf(zone)
	pairs := copss.PrefixHashes(pub)

	const rounds = 20000
	res.ExactNs = timePerOp(rounds, func() { exact.FacesFor(pub) })
	res.BloomNs = timePerOp(rounds, func() { blm.FacesFor(pub) })
	res.BloomPrehashNs = timePerOp(rounds, func() { blm.FacesForHashed(pub, pairs) })
	res.RangeNs = timePerOp(rounds, func() { rng.FacesFor(x, y) })

	// Precision: deliveries for one update in every zone.
	for _, a := range m.Areas() {
		if !a.IsLeaf() {
			continue
		}
		res.CDDeliveries += len(exact.FacesFor(a.PublishCD()))
		px, py, _ := geo.PointOf(a)
		res.RangeDeliveries += len(rng.FacesFor(px, py))
	}

	// --- Study 3: hierarchical aggregation vs flattened subscriptions for
	// the full 414-player trace population.
	rpST := copss.NewST(copss.MatchExact)
	flatST := copss.NewST(copss.MatchExact)
	for pi, p := range w.Trace.Players {
		area, ok := m.Area(p.Area)
		if !ok {
			continue
		}
		hier := area.SubscriptionCDs()
		res.HierarchicalEntries += len(hier)
		for _, c := range hier {
			rpST.Add(ndn.FaceID(pi), c)
		}
		flat := area.VisibleLeaves()
		res.FlattenedEntries += len(flat)
		for _, c := range flat {
			flatST.Add(ndn.FaceID(pi), c)
		}
	}
	res.HierarchicalRPSize = rpST.Len()
	res.FlattenedRPSize = flatST.Len()

	// --- Study 4: the one-step delivery choice. Small game updates versus
	// large content, with 30% of subscribers actually consuming.
	modes, err := testbed.RunDeliveryComparison([]int{150, 20000}, 12, 0.3, 20)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation delivery modes: %w", err)
	}
	res.DeliveryModes = modes
	return res, nil
}

// timePerOp measures fn's cost in ns/op over n runs.
func timePerOp(n int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// Render formats the ablation report.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations — forwarding engine and naming-design choices (%s)\n\n", r.Provenance)

	t1 := &stats.Table{
		Title:   "1. Forwarding-decision cost (one node, 62-player subscription population)",
		Headers: []string{"matcher", "ns/decision", "vs bloom"},
	}
	rel := func(v float64) string { return fmt.Sprintf("%.2fx", v/r.BloomNs) }
	t1.AddRow("ST exact sets", fmt.Sprintf("%.0f", r.ExactNs), rel(r.ExactNs))
	t1.AddRow("ST Bloom", fmt.Sprintf("%.0f", r.BloomNs), rel(r.BloomNs))
	t1.AddRow("ST Bloom + first-hop hashes", fmt.Sprintf("%.0f", r.BloomPrehashNs), rel(r.BloomPrehashNs))
	t1.AddRow("coordinate ranges (Mercury-style)", fmt.Sprintf("%.0f", r.RangeNs), rel(r.RangeNs))
	b.WriteString(t1.String())
	b.WriteString("\n")

	fmt.Fprintf(&b, "2. Delivery precision (one update per zone): CD hierarchy %d deliveries, "+
		"coordinate ranges %d (%.1fx over-delivery — 2D ranges cannot express altitude layers)\n\n",
		r.CDDeliveries, r.RangeDeliveries, float64(r.RangeDeliveries)/float64(r.CDDeliveries))

	t3 := &stats.Table{
		Title:   "3. Subscription state, 414 players (hierarchical aggregation vs flattened leaves)",
		Headers: []string{"scheme", "player entries", "first-hop ST entries"},
	}
	t3.AddRow("hierarchical CDs", fmt.Sprintf("%d", r.HierarchicalEntries), fmt.Sprintf("%d", r.HierarchicalRPSize))
	t3.AddRow("flattened leaf CDs", fmt.Sprintf("%d", r.FlattenedEntries), fmt.Sprintf("%d", r.FlattenedRPSize))
	b.WriteString(t3.String())
	fmt.Fprintf(&b, "aggregation saves %.1f%% of subscription state\n\n",
		100*(1-float64(r.HierarchicalEntries)/float64(r.FlattenedEntries)))

	t4 := &stats.Table{
		Title:   "4. Delivery mode (12 subscribers, 30% consuming; one-step is the paper's gaming choice)",
		Headers: []string{"mode", "payload", "mean latency", "network bytes", "deliveries"},
	}
	for _, m := range r.DeliveryModes {
		t4.AddRow(m.Mode.String(), fmt.Sprintf("%dB", m.PayloadBytes),
			stats.Ms(m.MeanLatencyMs), stats.Bytes(m.NetworkBytes), fmt.Sprintf("%d", m.Deliveries))
	}
	b.WriteString(t4.String())
	return b.String()
}
