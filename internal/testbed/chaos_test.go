package testbed

import (
	"flag"
	"fmt"
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/broker"
	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/faultnet"
	"github.com/icn-gaming/gcopss/internal/flowctl"
	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/obs"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// The chaos matrix drives the full Fig. 3b network through an RP migration
// and a concurrent QR snapshot download while the control plane is under
// seeded faults: loss, reordering, and a partition of the handoff path
// during one of the three migration stages. The multicast data plane keeps
// the paper's FIFO-lossless link assumption (faults are only=ctl / only=qr),
// so the assertions are exact: the reliability layer must make migration
// loss-free and fetches terminating no matter what happens to control
// packets.

// chaosWorkers selects the scheduler shard count the chaos suite runs under
// (go test ./internal/testbed -workers 4). Every worker count must reproduce
// the identical fault trace and outcomes.
var chaosWorkers = flag.Int("workers", 1, "scheduler worker shards for the chaos suite")

// chaosStage names when the R3-R6 partition window opens relative to the
// handoff instant (t=250ms of virtual time).
var chaosStages = map[string]string{
	"A": "245ms..252ms", // around PrepareHandoff: pre-seeding and first floods
	"B": "250ms..265ms", // while Handoff floods and Joins race
	"C": "255ms..290ms", // mid-grafting: Confirms, Prunes, stragglers
}

type chaosResult struct {
	missing      int    // (subscriber, seq) pairs never delivered
	delivered    uint64 // total multicast deliveries (dups included)
	trace        uint64 // injector decision trace hash
	dropped      uint64 // faultnet_dropped_total
	retrans      uint64 // sum of router ARQ retransmissions
	newRPActive  bool
	fetchDone    bool
	fetchFailed  bool
	fetchRetries uint64
}

func chaosSpec(loss float64, reorder bool, stage string) string {
	reorderP := "0"
	if reorder {
		reorderP = "0.3"
	}
	// Publications are encapsulated as Interests toward the RP (COPSS push
	// semantics), so qr-class faults stay off the publication paths: they are
	// scoped to the R2-R4 link, which only the snapshot fetch traverses. The
	// data plane itself keeps the paper's lossless-FIFO link assumption.
	return fmt.Sprintf(
		"R3-R6:only=ctl,loss=%g,reorder=%s,part=%s;R2-R4:only=qr,loss=%g;*:only=ctl,loss=%g,reorder=%s",
		loss, reorderP, chaosStages[stage], loss, loss, reorderP)
}

func runChaosCell(t *testing.T, loss float64, reorder bool, stage string, seed int64) chaosResult {
	return runChaosCellWorkers(t, loss, reorder, stage, seed, *chaosWorkers)
}

func runChaosCellWorkers(t *testing.T, loss float64, reorder bool, stage string, seed int64, workers int) chaosResult {
	t.Helper()
	s, err := PaperSetup()
	if err != nil {
		t.Fatal(err)
	}
	s.LinkDelay = 100 * time.Microsecond
	tb := New(WithWorkers(workers))
	// A short PIT lifetime lets retried Interests re-forward instead of
	// aggregating onto a pending entry whose downstream copy was lost.
	rn, err := buildRouterNet(tb, s,
		core.WithNDNOptions(ndn.WithInterestLifetime(60*time.Millisecond)))
	if err != nil {
		t.Fatal(err)
	}

	spec, err := faultnet.ParseSpec(chaosSpec(loss, reorder, stage))
	if err != nil {
		t.Fatal(err)
	}
	in := faultnet.New(spec, seed)
	in.SetEpoch(time.Unix(0, 0))
	reg := obs.NewRegistry()
	in.Instrument(reg)
	// Faults switch on after the subscription bootstrap (t=90ms): the chaos
	// window covers the publish stream, the migration and the QR download.
	tb.Schedule(time.Unix(0, 0).Add(90*time.Millisecond), func(time.Time) {
		tb.SetFaults(in)
	})

	// RP at R1; the announcement flood is ARQ-registered via BecomeRPAt.
	actions, err := rn.routers["R1"].BecomeRPAt(time.Unix(0, 0), copss.RPInfo{
		Name:     "/rpA",
		Prefixes: copss.PartitionPrefixes([]string{"1", "2", "3", "4", "5"}),
		Seq:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.Schedule(time.Unix(0, 0).Add(time.Millisecond), func(now time.Time) {
		tb.Emit(now, "R1", actions)
	})

	// ARQ retransmission timers on every router.
	tb.Every(time.Unix(0, 0).Add(10*time.Millisecond), 10*time.Millisecond, func(now time.Time) {
		for _, name := range rn.names {
			r := rn.routers[name]
			tb.EmitTo(now, name, func(sink ndn.ActionSink) { r.TickTo(now, sink) })
		}
	})

	// Subscribers of region 2 on every router; one publisher on R5.
	type rx struct{ seqs map[uint64]int }
	subs := map[string]*rx{}
	for i, router := range rn.names {
		name := fmt.Sprintf("s%d", i)
		state := &rx{seqs: map[uint64]int{}}
		subs[name] = state
		tb.AddNode(name, func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, _ ndn.ActionSink) {
			if pkt.Type == wire.TypeMulticast && pkt.Origin != core.FlushOrigin {
				state.seqs[pkt.Seq]++
			}
		}, func(*wire.Packet) time.Duration { return s.Costs.HostProc }, 0)
		if _, err := rn.attachClient(router, name, core.FaceClient, s.LinkDelay); err != nil {
			t.Fatal(err)
		}
		tb.Schedule(time.Unix(0, 0).Add(50*time.Millisecond), func(now time.Time) {
			tb.Emit(now, name, []ndn.Action{{Face: 0, Packet: &wire.Packet{
				Type: wire.TypeSubscribe, CDs: []cd.CD{cd.MustParse("/2")},
			}}})
		})
	}
	tb.AddNode("p", func(time.Time, ndn.FaceID, *wire.Packet, ndn.ActionSink) {},
		func(*wire.Packet) time.Duration { return s.Costs.HostProc }, 0)
	if _, err := rn.attachClient("R5", "p", core.FaceClient, s.LinkDelay); err != nil {
		t.Fatal(err)
	}

	// A QR snapshot broker on R4 and a fetcher on R2, running through the
	// same faulted network while the migration churns.
	leaf := cd.MustParse("/3/1")
	objects := []string{"o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7"}
	tb.AddNode("bk", func(now time.Time, from ndn.FaceID, pkt *wire.Packet, sink ndn.ActionSink) {
		if pkt.Type != wire.TypeInterest {
			return
		}
		if pkt.Name == broker.ManifestName(leaf) {
			var manifest []byte
			for _, id := range objects {
				manifest = append(manifest, []byte(id+":10\n")...)
			}
			sink.Emit(ndn.Action{Face: from, Packet: &wire.Packet{
				Type: wire.TypeData, Name: pkt.Name, Payload: manifest,
			}})
			return
		}
		for _, id := range objects {
			if pkt.Name == broker.ObjectName(leaf, id) {
				sink.Emit(ndn.Action{Face: from, Packet: &wire.Packet{
					Type: wire.TypeData, Name: pkt.Name,
					Payload: []byte(fmt.Sprintf("obj:%s:1:", id)),
				}})
				return
			}
		}
	}, func(*wire.Packet) time.Duration { return s.Costs.HostProc }, 0)
	if _, err := rn.attachClient("R4", "bk", core.FaceClient, s.LinkDelay); err != nil {
		t.Fatal(err)
	}
	tb.Schedule(time.Unix(0, 0).Add(5*time.Millisecond), func(now time.Time) {
		tb.Emit(now, "bk", []ndn.Action{{Face: 0, Packet: &wire.Packet{
			Type: wire.TypeFIBAdd, Name: broker.SnapshotPrefix, Seq: 1, Origin: "bk",
		}}})
	})

	fetch := broker.NewFetch(leaf, flowctl.WithWindow(1, 3, 16))
	emitInterests := func(now time.Time, pkts []*wire.Packet) {
		var out []ndn.Action
		for _, p := range pkts {
			out = append(out, ndn.Action{Face: 0, Packet: p})
		}
		tb.Emit(now, "fx", out)
	}
	tb.AddNode("fx", func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, sink ndn.ActionSink) {
		out, _ := fetch.HandleDataAt(now, pkt)
		for _, p := range out {
			sink.Emit(ndn.Action{Face: 0, Packet: p})
		}
	}, func(*wire.Packet) time.Duration { return s.Costs.HostProc }, 0)
	if _, err := rn.attachClient("R2", "fx", core.FaceClient, s.LinkDelay); err != nil {
		t.Fatal(err)
	}
	fetchStart := time.Unix(0, 0).Add(120 * time.Millisecond)
	tb.Schedule(fetchStart, func(now time.Time) { emitInterests(now, fetch.StartAt(now)) })
	tb.Every(fetchStart.Add(20*time.Millisecond), 20*time.Millisecond, func(now time.Time) {
		if !fetch.Done() && !fetch.Failed() {
			emitInterests(now, fetch.Tick(now))
		}
	})

	// Publish seq 1..N every 2 ms starting at t=100 ms; the handoff fires
	// mid-stream at t=250 ms with packets in flight and faults active.
	const total = 80
	start := time.Unix(0, 0).Add(100 * time.Millisecond)
	for i := 1; i <= total; i++ {
		seq := uint64(i)
		tb.Schedule(start.Add(time.Duration(i)*2*time.Millisecond), func(now time.Time) {
			tb.Emit(now, "p", []ndn.Action{{Face: 0, Packet: &wire.Packet{
				Type:    wire.TypeMulticast,
				CDs:     []cd.CD{cd.MustParse("/2/3")},
				Origin:  "p",
				Seq:     seq,
				Payload: []byte("x"),
				SentAt:  now.UnixNano(),
			}}})
		})
	}

	// Handoff /2 (and /4, /5) from rpA@R1 to rpB@R6, path R1-R3-R6 — the
	// partitioned link is in the middle of the handoff path.
	tb.Schedule(start.Add(150*time.Millisecond), func(now time.Time) {
		path := []core.PathHop{
			{Router: rn.routers["R1"], FaceUp: rn.faceToward["R1"]["R3"]},
			{Router: rn.routers["R3"], FaceUp: rn.faceToward["R3"]["R6"], FaceDown: rn.faceToward["R3"]["R1"]},
			{Router: rn.routers["R6"], FaceDown: rn.faceToward["R6"]["R3"]},
		}
		move := []cd.CD{cd.MustNew("2"), cd.MustNew("4"), cd.MustNew("5")}
		acts, err := core.PrepareHandoff(now, "/rpA", "/rpB", move, 2, path)
		if err != nil {
			t.Errorf("PrepareHandoff: %v", err)
			return
		}
		tb.Emit(now, "R6", acts.FromNew)
		tb.Emit(now, "R1", acts.FromOld)
	})

	deadline := start.Add(time.Duration(total)*2*time.Millisecond + 10*time.Second)
	if err := tb.Run(deadline, 0); err != nil {
		t.Fatal(err)
	}

	res := chaosResult{
		trace:        in.TraceHash(),
		dropped:      reg.Counter("faultnet_dropped_total").Value(),
		newRPActive:  rn.routers["R6"].Stats().RPDeliveries > 0,
		fetchDone:    fetch.Done(),
		fetchFailed:  fetch.Failed(),
		fetchRetries: fetch.Retransmissions(),
	}
	for _, name := range rn.names {
		res.retrans += rn.routers[name].Stats().Retransmissions
	}
	for i := range rn.names {
		state := subs[fmt.Sprintf("s%d", i)]
		for seq := uint64(1); seq <= total; seq++ {
			n := state.seqs[seq]
			if n == 0 {
				res.missing++
			}
			res.delivered += uint64(n)
		}
	}
	return res
}

// TestChaosMatrix sweeps {loss} × {reorder} × {partition stage}: under every
// cell the migration must stay loss-free once it settles and the snapshot
// download must terminate.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	for _, loss := range []float64{0, 0.01, 0.05, 0.20} {
		for _, reorder := range []bool{false, true} {
			for _, stage := range []string{"A", "B", "C"} {
				loss, reorder, stage := loss, reorder, stage
				name := fmt.Sprintf("loss=%g/reorder=%v/part=%s", loss, reorder, stage)
				t.Run(name, func(t *testing.T) {
					res := runChaosCell(t, loss, reorder, stage, 1)
					if res.missing > 0 {
						t.Errorf("%d (subscriber, seq) deliveries missing — migration lost data", res.missing)
					}
					if !res.newRPActive {
						t.Error("new RP never delivered")
					}
					if !res.fetchDone && !res.fetchFailed {
						t.Error("QR fetch never terminated")
					}
					if loss == 0 && !res.fetchDone {
						t.Error("QR fetch failed on a lossless network")
					}
					if loss >= 0.05 {
						if res.dropped == 0 {
							t.Error("faultnet_dropped_total is zero under 5%+ loss")
						}
						if res.retrans == 0 {
							t.Error("retrans_total is zero under 5%+ loss — ARQ never fired")
						}
					}
				})
			}
		}
	}
}

// TestChaosDeterminism runs the acceptance cell — 5% loss with reordering —
// twice with the same seed: the fault decision trace and every observable
// outcome must be bit-identical.
func TestChaosDeterminism(t *testing.T) {
	a := runChaosCell(t, 0.05, true, "B", 7)
	b := runChaosCell(t, 0.05, true, "B", 7)
	if a != b {
		t.Fatalf("same seed diverged:\n  run1 %+v\n  run2 %+v", a, b)
	}
	if a.missing != 0 {
		t.Fatalf("acceptance cell lost %d deliveries", a.missing)
	}
	if a.dropped == 0 || a.retrans == 0 {
		t.Fatalf("acceptance cell did not exercise faults: %+v", a)
	}
	// A different seed must change the packet trace (the hash is live).
	c := runChaosCell(t, 0.05, true, "B", 8)
	if c.trace == a.trace {
		t.Fatal("different seeds produced identical traces")
	}
}
