package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Error("empty sample should be all zeros")
	}
	s.AddAll(3, 1, 2)
	if s.N() != 3 || s.Sum() != 6 || s.Mean() != 2 {
		t.Errorf("basic stats wrong: n=%d sum=%f mean=%f", s.N(), s.Sum(), s.Mean())
	}
	if s.Min() != 1 || s.Max() != 3 || s.Median() != 2 {
		t.Errorf("order stats wrong: %f %f %f", s.Min(), s.Max(), s.Median())
	}
	// Adding after sorting must work.
	s.Add(10)
	if s.Max() != 10 {
		t.Errorf("Max after re-add = %f", s.Max())
	}
}

func TestVarianceAndCI(t *testing.T) {
	var s Sample
	s.AddAll(2, 4, 4, 4, 5, 5, 7, 9)
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %f", got)
	}
	// Known dataset: population variance 4, sample variance 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %f", got)
	}
	ci := s.ConfidenceInterval95()
	want := 1.96 * math.Sqrt(32.0/7.0) / math.Sqrt(8)
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI = %f, want %f", ci, want)
	}
	var single Sample
	single.Add(5)
	if single.Variance() != 0 || single.ConfidenceInterval95() != 0 {
		t.Error("single observation should have zero variance/CI")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 100}, {-0.5, 1}, {1.5, 100},
		{0.5, 50.5}, {0.95, 95.05},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%f) = %f, want %f", tt.p, got, tt.want)
		}
	}
}

func TestFractionAbove(t *testing.T) {
	var s Sample
	s.AddAll(1, 2, 3, 4, 5)
	if got := s.FractionAbove(3); got != 0.4 {
		t.Errorf("FractionAbove(3) = %f", got)
	}
	if got := s.FractionAbove(10); got != 0 {
		t.Errorf("FractionAbove(10) = %f", got)
	}
	var empty Sample
	if empty.FractionAbove(0) != 0 {
		t.Error("empty FractionAbove != 0")
	}
}

func TestCDF(t *testing.T) {
	var s Sample
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	cdf := s.CDF(100)
	if len(cdf) < 100 || len(cdf) > 102 {
		t.Errorf("CDF points = %d", len(cdf))
	}
	if cdf[len(cdf)-1].Fraction != 1 {
		t.Error("CDF does not end at 1")
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Value < cdf[i-1].Value || cdf[i].Fraction < cdf[i-1].Fraction {
			t.Fatal("CDF not monotone")
		}
	}
	var empty Sample
	if empty.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
	var tiny Sample
	tiny.AddAll(5, 6)
	full := tiny.CDF(0)
	if len(full) != 2 || full[1].Fraction != 1 {
		t.Errorf("full CDF = %v", full)
	}
}

func TestSummarize(t *testing.T) {
	var s Sample
	s.AddAll(10, 20, 30)
	sum := Summarize(&s)
	if sum.N != 3 || sum.Mean != 20 || sum.Min != 10 || sum.Max != 30 {
		t.Errorf("Summary = %+v", sum)
	}
	str := sum.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=20.000") {
		t.Errorf("Summary.String = %q", str)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Table I",
		Headers: []string{"Type", "Latency", "Load"},
	}
	tbl.AddRow("G-COPSS", "8.51ms", "1.2GB")
	tbl.AddRow("IP Server", "25.52ms", "2.4GB")
	out := tbl.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "G-COPSS") {
		t.Errorf("table output missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + separator + 2 rows
		t.Errorf("table lines = %d:\n%s", len(lines), out)
	}
	// Column alignment: each data line at least as wide as the header line.
	if len(lines[3]) < len(lines[1])-2 {
		t.Error("columns misaligned")
	}
}

func TestFormatters(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{500, "500B"},
		{2048, "2.05KB"},
		{3.5e6, "3.50MB"},
		{1.46e9, "1.46GB"},
	}
	for _, tt := range tests {
		if got := Bytes(tt.v); got != tt.want {
			t.Errorf("Bytes(%f) = %q, want %q", tt.v, got, tt.want)
		}
	}
	msTests := []struct {
		v    float64
		want string
	}{
		{8.51, "8.51ms"},
		{250, "250ms"},
		{25520, "25.5s"},
	}
	for _, tt := range msTests {
		if got := Ms(tt.v); got != tt.want {
			t.Errorf("Ms(%f) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		var s Sample
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		p := float64(pRaw) / 255
		got := s.Percentile(p)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestQuickMeanWithinBounds(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				s.Add(v)
			}
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
