package testbed

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/event"
	"github.com/icn-gaming/gcopss/internal/gamemap"
	"github.com/icn-gaming/gcopss/internal/ndn"
	obstrace "github.com/icn-gaming/gcopss/internal/obs/trace"
	"github.com/icn-gaming/gcopss/internal/stats"
	"github.com/icn-gaming/gcopss/internal/topo"
	"github.com/icn-gaming/gcopss/internal/trace"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// Setup is the shared microbenchmark scenario: the 5×5 world, the 62-player
// publish trace and the processing-cost model.
type Setup struct {
	World *gamemap.World
	Trace *trace.Trace
	Costs Costs

	// LinkDelay is the per-link propagation delay of the lab LAN.
	LinkDelay time.Duration
	// WarmupAt is when the trace starts (control plane settles before it).
	Warmup time.Duration
	// Drain is how long after the last publish the run keeps delivering.
	Drain time.Duration

	// Workers is the number of scheduler shards packet processing is
	// partitioned across (0 or 1 = single-threaded). Results are identical
	// at every worker count.
	Workers int

	// Tracer, when non-nil, attaches causal packet tracing to the G-COPSS
	// routers: sampled publications carry a trace ID end to end and every
	// hop decision lands in the tracer's per-router rings. Sampling is
	// deterministic under the tracer's seed, so the trace itself replays.
	Tracer *obstrace.Tracer
	// Profile enables the sharded-scheduler profiler for the G-COPSS run;
	// the per-window timeline and barrier-wait attribution come back in
	// MicroResult.Sched. Profiling observes wall-clock time, so it changes
	// no virtual-time results but does cost a few timestamps per window.
	Profile bool

	// NDN configures the query/response baseline.
	NDN NDNOptions
}

// NDNOptions parameterizes the NDN (VoCCN/ACT-style) solution of the
// microbenchmark.
type NDNOptions struct {
	// PipelineWindow is the number of outstanding Interests a consumer
	// keeps per producer ("a set of at most N (N = 3 ...) queries
	// outstanding at any time").
	PipelineWindow int
	// Accumulate is the producer's update-accumulation interval t ("we send
	// a response every t ms").
	Accumulate time.Duration
	// Refresh is the consumer's Interest refresh period (PIT lifetime).
	Refresh time.Duration
	// QueryAllPeers makes every player poll every other player ("every
	// player queries all the possible players"); false restricts polling to
	// the AoI-visible peers.
	QueryAllPeers bool
}

// PaperSetup builds the Section V-A scenario: 5×5 map, paper object
// population, 62 players publishing every 1–5 s for 10 minutes.
func PaperSetup() (*Setup, error) {
	m, err := gamemap.NewGrid(5, 5)
	if err != nil {
		return nil, err
	}
	world := gamemap.NewWorld(m)
	if err := world.PopulateObjects(gamemap.PaperObjectCounts(), 0, rand.New(rand.NewSource(31))); err != nil {
		return nil, err
	}
	tr, err := trace.GenerateMicrobench(world, trace.PaperMicrobench())
	if err != nil {
		return nil, err
	}
	return &Setup{
		World:     world,
		Trace:     tr,
		Costs:     PaperCosts(),
		LinkDelay: 100 * time.Microsecond,
		Warmup:    time.Second,
		Drain:     60 * time.Second,
		NDN: NDNOptions{
			PipelineWindow: 3,
			Accumulate:     50 * time.Millisecond,
			Refresh:        4 * time.Second,
			QueryAllPeers:  true,
		},
	}, nil
}

// ScaledSetup shortens the trace for fast tests.
func ScaledSetup(duration time.Duration, seed int64) (*Setup, error) {
	s, err := PaperSetup()
	if err != nil {
		return nil, err
	}
	cfg := trace.PaperMicrobench()
	cfg.Duration = duration
	cfg.Seed = seed
	tr, err := trace.GenerateMicrobench(s.World, cfg)
	if err != nil {
		return nil, err
	}
	s.Trace = tr
	s.Drain = 20 * time.Second
	return s, nil
}

// MicroResult is one system's microbenchmark outcome.
type MicroResult struct {
	// Latency holds per-delivery update latencies in milliseconds — the
	// Fig. 4 CDF data.
	Latency *stats.Sample
	// Deliveries counts received update copies; Published counts the
	// publish events that entered the network.
	Deliveries int
	Published  int
	// PacketEvents and Bytes aggregate network activity.
	PacketEvents uint64
	Bytes        float64
	// Sched is the scheduler profile of the run (nil unless Setup.Profile
	// was set): wall-clock attribution of the windowed parallel loop.
	Sched *event.SchedProfile
}

// clientAcc accumulates one client's delivery observations. Client nodes on
// different shards run concurrently, so each records into its own sample;
// runs merge them in player order afterwards (mergeAccs), which keeps the
// aggregate bit-identical at every worker count.
type clientAcc struct {
	lat        stats.Sample
	deliveries int
}

// mergeAccs folds per-client accumulators into the result in player order.
func mergeAccs(res *MicroResult, accs []clientAcc) {
	for i := range accs {
		res.Latency.Merge(&accs[i].lat)
		res.Deliveries += accs[i].deliveries
	}
}

// attachment maps players onto routers uniformly ("players are uniformly
// distributed across the routers in the network").
func attachment(playerCount int) []string {
	out := make([]string, playerCount)
	for i := range out {
		out[i] = fmt.Sprintf("R%d", i%6+1)
	}
	return out
}

// clientName returns the testbed node name of a player.
func clientName(i int) string { return fmt.Sprintf("player%d", i) }

// visibilityIndex precomputes leaf CD key → player indexes able to see it.
func visibilityIndex(s *Setup) (map[string][]int, error) {
	out := make(map[string][]int)
	for pi, p := range s.Trace.Players {
		area, ok := s.World.Map.Area(p.Area)
		if !ok {
			return nil, fmt.Errorf("testbed: player %d in unknown area %v", pi, p.Area)
		}
		for _, leaf := range area.VisibleLeaves() {
			out[leaf.Key()] = append(out[leaf.Key()], pi)
		}
	}
	return out, nil
}

// routerNet wires six core.Routers in the Fig. 3b topology onto a testbed.
type routerNet struct {
	tb       *Testbed
	routers  map[string]*core.Router
	nextFace map[string]ndn.FaceID
	// faceToward[a][b] is the face on router a of the a–b link.
	faceToward map[string]map[string]ndn.FaceID
	paths      *topo.Paths
	ids        map[string]topo.NodeID
	names      []string
}

// buildRouterNet creates the routers (with the given per-router options) and
// links them per the benchmark topology.
func buildRouterNet(tb *Testbed, s *Setup, opts ...core.Option) (*routerNet, error) {
	g, ids := topo.Benchmark()
	rn := &routerNet{
		tb:         tb,
		routers:    make(map[string]*core.Router),
		nextFace:   make(map[string]ndn.FaceID),
		faceToward: make(map[string]map[string]ndn.FaceID),
		paths:      g.AllPairs(),
		ids:        ids,
		names:      []string{"R1", "R2", "R3", "R4", "R5", "R6"},
	}
	for _, name := range rn.names {
		r := core.NewRouter(name, opts...)
		rn.routers[name] = r
		rn.faceToward[name] = make(map[string]ndn.FaceID)
		router := r
		tb.AddNode(name, router.HandlePacketTo,
			func(*wire.Packet) time.Duration { return s.Costs.RouterProc },
			s.Costs.PerCopy)
	}
	type edge struct{ a, b string }
	for _, e := range []edge{{"R1", "R2"}, {"R1", "R3"}, {"R2", "R4"}, {"R2", "R5"}, {"R3", "R6"}} {
		fa, fb := rn.allocFace(e.a), rn.allocFace(e.b)
		rn.routers[e.a].AddFace(fa, core.FaceRouter)
		rn.routers[e.b].AddFace(fb, core.FaceRouter)
		rn.faceToward[e.a][e.b] = fa
		rn.faceToward[e.b][e.a] = fb
		if err := tb.Connect(e.a, fa, e.b, fb, s.LinkDelay); err != nil {
			return nil, err
		}
	}
	return rn, nil
}

func (rn *routerNet) allocFace(router string) ndn.FaceID {
	rn.nextFace[router]++
	return rn.nextFace[router]
}

// attachClient wires a client node to a router and returns the router-side
// face (the client's own face is always 0).
func (rn *routerNet) attachClient(router, client string, kind core.FaceKind, delay time.Duration) (ndn.FaceID, error) {
	f := rn.allocFace(router)
	rn.routers[router].AddFace(f, kind)
	if err := rn.tb.Connect(router, f, client, 0, delay); err != nil {
		return 0, err
	}
	return f, nil
}

// nextHopFace returns the face on router `at` leading one hop along the
// shortest path toward router `dest`.
func (rn *routerNet) nextHopFace(at, dest string) (ndn.FaceID, bool) {
	nh, ok := rn.paths.NextHop(rn.ids[at], rn.ids[dest])
	if !ok {
		return 0, false
	}
	return rn.faceToward[at][rn.nameOf(nh)], true
}

func (rn *routerNet) nameOf(id topo.NodeID) string {
	for name, nid := range rn.ids {
		if nid == id {
			return name
		}
	}
	return ""
}

// worldPartitionPrefixes returns the RP serving set for the 5×5 map.
func worldPartitionPrefixes(s *Setup) []cd.CD {
	prefixes := []cd.CD{cd.MustNew("")}
	for _, r := range s.World.Map.RegionNames() {
		prefixes = append(prefixes, cd.MustNew(r))
	}
	return prefixes
}
