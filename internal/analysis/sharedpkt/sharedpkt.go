// Package sharedpkt guards the immutable-after-send packet discipline.
//
// The zero-copy fast path (DESIGN.md "Packet ownership and the zero-copy
// fast path") shares one *wire.Packet across every out-face of a fan-out and
// across the ARQ retransmission queue. That is only sound if a packet is
// never mutated after it has been handed to a handler or emitted: a write
// through a handler parameter would be observed by every sibling action and
// by in-flight deliveries.
//
// The checker therefore flags any write through a function parameter of type
// *wire.Packet — field assignment, compound assignment, ++/--, element
// assignment into a field, or whole-struct overwrite (*pkt = ...). Mutation
// is done copy-on-write instead: copy the struct into a fresh local and
// write there, which this checker never flags because the local is not the
// shared parameter:
//
//	cp := *pkt        // fresh object, private to this call
//	cp.Name = newName // fine
//	use(&cp)
//
// The check is syntactic per identifier, not a points-to analysis: writes
// through a second alias (q := pkt; q.X = ...) are not caught, and
// reassigning the parameter itself (pkt = &cp) is legal and ends the
// parameter's association with the shared packet. Package internal/wire is
// exempt — it owns the representation (Decode fills packets in place).
package sharedpkt

import (
	"go/ast"
	"go/types"

	"github.com/icn-gaming/gcopss/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "sharedpkt",
	Doc:  "handler-received *wire.Packet values are shared and immutable; mutate a copy (cp := *pkt), never the parameter",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if analysis.PathIn(pass.Pkg.Path(), "internal/wire") {
		return nil, nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(pass, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, n.X)
		}
		return true
	})
	return nil, nil
}

// checkWrite reports lhs if it writes through a *wire.Packet parameter:
// pkt.Field, pkt.Field[i], or *pkt.
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	switch e := lhs.(type) {
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok && isPacketParam(pass, id) {
			pass.Reportf(lhs.Pos(), "write to field %s of shared packet parameter %s: packets are immutable after send, copy first (cp := *%s)", e.Sel.Name, id.Name, id.Name)
		}
	case *ast.IndexExpr:
		// pkt.CDs[i] = ... mutates shared backing storage.
		if sel, ok := e.X.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && isPacketParam(pass, id) {
				pass.Reportf(lhs.Pos(), "write into field %s of shared packet parameter %s: packets are immutable after send", sel.Sel.Name, id.Name)
			}
		}
	case *ast.StarExpr:
		if id, ok := e.X.(*ast.Ident); ok && isPacketParam(pass, id) {
			pass.Reportf(lhs.Pos(), "overwrite through shared packet parameter %s: packets are immutable after send", id.Name)
		}
	}
}

// isPacketParam reports whether id denotes a function (or closure) parameter
// of type *wire.Packet. Locals — including COW copies and pointers to them —
// are exempt by construction.
func isPacketParam(pass *analysis.Pass, id *ast.Ident) bool {
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !isParam(pass, v) {
		return false
	}
	ptr, ok := v.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Packet" && obj.Pkg() != nil && analysis.PathIn(obj.Pkg().Path(), "internal/wire")
}

// isParam reports whether v appears in some function signature's parameter
// tuple. The types API does not mark parameter-ness on the Var itself, so the
// analyzer records every parameter object while walking the file set.
func isParam(pass *analysis.Pass, v *types.Var) bool {
	params := paramSet(pass)
	return params[v]
}

// paramCache memoizes the parameter set per Pass (the Inspect callback runs
// per node; rebuilding the set each time would be quadratic).
var paramCache = map[*analysis.Pass]map[*types.Var]bool{}

func paramSet(pass *analysis.Pass) map[*types.Var]bool {
	if s, ok := paramCache[pass]; ok {
		return s
	}
	s := map[*types.Var]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					s[v] = true
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				collect(n.Type.Params)
			case *ast.FuncLit:
				collect(n.Type.Params)
			}
			return true
		})
	}
	paramCache[pass] = s
	return s
}
