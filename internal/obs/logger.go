package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger returns a text-format slog logger writing to w at the given
// level. Daemons create one root logger and derive per-component children
// with Scoped.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Scoped returns a child logger tagged with a component attribute, the
// per-component scoping used across the daemons (router, broker, player,
// debug server).
func Scoped(l *slog.Logger, component string) *slog.Logger {
	return l.With("component", component)
}

// ParseLevel maps the -log-level flag values (debug, info, warn, error,
// case-insensitive) to slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Printf adapts a slog logger to the printf-style logging hooks older
// components expose (e.g. transport.Daemon.SetLogger).
func Printf(l *slog.Logger) func(format string, args ...interface{}) {
	return func(format string, args ...interface{}) {
		l.Info(fmt.Sprintf(format, args...))
	}
}
