package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/icn-gaming/gcopss/internal/gamemap"
)

// Config parameterizes the large-scale trace synthesizer.
type Config struct {
	Players      int
	Duration     time.Duration
	TotalUpdates int

	// Update payload sizes, uniform in [MinUpdateSize, MaxUpdateSize].
	MinUpdateSize int
	MaxUpdateSize int

	// Players per area, drawn uniformly in [MinPlayersPerArea,
	// MaxPlayersPerArea] then rescaled so the total matches Players.
	MinPlayersPerArea int
	MaxPlayersPerArea int

	// HeavyTailSigma is the σ of the lognormal per-player activity weights
	// that shape the Fig. 3c distribution; 0 selects the default (1.1).
	HeavyTailSigma float64

	Seed int64
}

// PaperConfig returns the published statistics of the filtered CS trace:
// 414 players, 1,686,905 updates over 7h05m25s, 4–20 players per area.
func PaperConfig() Config {
	return Config{
		Players:           414,
		Duration:          7*time.Hour + 5*time.Minute + 25*time.Second,
		TotalUpdates:      1_686_905,
		MinUpdateSize:     50,
		MaxUpdateSize:     350,
		MinPlayersPerArea: 4,
		MaxPlayersPerArea: 20,
		Seed:              20120618, // ICDCS'12
	}
}

// validate normalizes and checks a config.
func (c *Config) validate(areaCount int) error {
	if c.Players < 1 || c.TotalUpdates < 1 || c.Duration <= 0 {
		return fmt.Errorf("trace: degenerate config %+v", *c)
	}
	if c.MinUpdateSize <= 0 {
		c.MinUpdateSize = 50
	}
	if c.MaxUpdateSize < c.MinUpdateSize {
		c.MaxUpdateSize = c.MinUpdateSize
	}
	if c.MinPlayersPerArea <= 0 {
		c.MinPlayersPerArea = 1
	}
	if c.MaxPlayersPerArea < c.MinPlayersPerArea {
		c.MaxPlayersPerArea = c.MinPlayersPerArea
	}
	if c.HeavyTailSigma == 0 {
		c.HeavyTailSigma = 1.1
	}
	if c.Players < areaCount*0 { // placement always feasible; counts rescale
		return nil
	}
	return nil
}

// Generate synthesizes a trace over the world's map: players are placed per
// Fig. 3d, per-player update counts follow a heavy-tailed (lognormal)
// distribution per Fig. 3c, update times are uniform over the duration, and
// each update targets an object visible from the player's area (so
// top-layer objects accumulate updates from everyone, as in the paper).
func Generate(w *gamemap.World, cfg Config) (*Trace, error) {
	areas := playerAreas(w.Map)
	if err := cfg.validate(len(areas)); err != nil {
		return nil, err
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))

	t := &Trace{Duration: cfg.Duration}
	placePlayers(t, areas, cfg, rnd)
	assignUpdates(t, w, cfg, rnd)
	t.Sort()
	return t, nil
}

// playerAreas returns the areas players may occupy (every area of the map).
func playerAreas(m *gamemap.Map) []*gamemap.Area {
	return m.Areas()
}

// placePlayers distributes cfg.Players across areas with per-area counts in
// the configured band (rescaled to the exact total).
func placePlayers(t *Trace, areas []*gamemap.Area, cfg Config, rnd *rand.Rand) {
	t.Players = placePlayerInfos(areas, cfg.Players, cfg.MinPlayersPerArea, cfg.MaxPlayersPerArea, rnd)
}

// placePlayerInfos is the placement core shared by the batch generator and
// the streaming generator: per-area counts drawn in [minPer, maxPer],
// rescaled to the exact player total.
func placePlayerInfos(areas []*gamemap.Area, players, minPer, maxPer int, rnd *rand.Rand) []PlayerInfo {
	weights := make([]int, len(areas))
	total := 0
	for i := range areas {
		weights[i] = minPer
		if span := maxPer - minPer; span > 0 {
			weights[i] += rnd.Intn(span + 1)
		}
		total += weights[i]
	}
	// Rescale to the exact player count, respecting a floor of 1 per area
	// when players are plentiful.
	counts := make([]int, len(areas))
	assigned := 0
	for i := range areas {
		counts[i] = weights[i] * players / total
		assigned += counts[i]
	}
	for i := 0; assigned < players; i++ {
		counts[i%len(counts)]++
		assigned++
	}
	for i := 0; assigned > players; i++ {
		if counts[i%len(counts)] > 0 {
			counts[i%len(counts)]--
			assigned--
		}
	}
	out := make([]PlayerInfo, 0, players)
	for i, a := range areas {
		for j := 0; j < counts[i]; j++ {
			out = append(out, PlayerInfo{
				ID:   fmt.Sprintf("player%d", len(out)),
				Area: a.CD(),
			})
		}
	}
	return out
}

// assignUpdates draws per-player activity weights from a lognormal
// distribution, splits the exact update total proportionally, then assigns
// times and visible-object targets.
func assignUpdates(t *Trace, w *gamemap.World, cfg Config, rnd *rand.Rand) {
	n := len(t.Players)
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = math.Exp(rnd.NormFloat64() * cfg.HeavyTailSigma)
		wsum += weights[i]
	}
	counts := make([]int, n)
	assigned := 0
	for i := range counts {
		counts[i] = int(weights[i] / wsum * float64(cfg.TotalUpdates))
		assigned += counts[i]
	}
	for i := 0; assigned < cfg.TotalUpdates; i++ {
		counts[i%n]++
		assigned++
	}
	for i := 0; assigned > cfg.TotalUpdates; i++ {
		if counts[i%n] > 0 {
			counts[i%n]--
			assigned--
		}
	}

	t.Updates = make([]Update, 0, cfg.TotalUpdates)
	sizeSpan := cfg.MaxUpdateSize - cfg.MinUpdateSize + 1
	for pi, c := range counts {
		area, _ := w.Map.Area(t.Players[pi].Area)
		visible := w.VisibleObjects(area)
		for k := 0; k < c; k++ {
			at := time.Duration(rnd.Int63n(int64(cfg.Duration)))
			u := Update{
				At:     at,
				Player: pi,
				Size:   cfg.MinUpdateSize + rnd.Intn(sizeSpan),
			}
			if len(visible) > 0 {
				obj := visible[rnd.Intn(len(visible))]
				u.CD = obj.Leaf
				u.Object = obj.ID
			} else {
				u.CD = area.PublishCD()
			}
			t.Updates = append(t.Updates, u)
		}
	}
}

// MicrobenchConfig parameterizes the 62-player testbed trace: 2 players in
// every area of the 5×5 map, each publishing at a uniform interval in
// [MinInterval, MaxInterval] for the full duration, with 50–350-byte
// payloads; the paper's run yields 12,440 publish events in 10 minutes.
type MicrobenchConfig struct {
	PlayersPerArea int
	Duration       time.Duration
	MinInterval    time.Duration
	MaxInterval    time.Duration
	MinUpdateSize  int
	MaxUpdateSize  int
	Seed           int64
}

// PaperMicrobench returns the microbenchmark parameters of Section V-A.
func PaperMicrobench() MicrobenchConfig {
	return MicrobenchConfig{
		PlayersPerArea: 2,
		Duration:       10 * time.Minute,
		MinInterval:    time.Second,
		MaxInterval:    5 * time.Second,
		MinUpdateSize:  50,
		MaxUpdateSize:  350,
		Seed:           62,
	}
}

// GenerateMicrobench synthesizes the testbed trace.
func GenerateMicrobench(w *gamemap.World, cfg MicrobenchConfig) (*Trace, error) {
	if cfg.PlayersPerArea < 1 || cfg.Duration <= 0 || cfg.MinInterval <= 0 ||
		cfg.MaxInterval < cfg.MinInterval {
		return nil, fmt.Errorf("trace: degenerate microbench config %+v", cfg)
	}
	if cfg.MinUpdateSize <= 0 {
		cfg.MinUpdateSize = 50
	}
	if cfg.MaxUpdateSize < cfg.MinUpdateSize {
		cfg.MaxUpdateSize = cfg.MinUpdateSize
	}
	rnd := rand.New(rand.NewSource(cfg.Seed))
	t := &Trace{Duration: cfg.Duration}

	areas := w.Map.Areas()
	for _, a := range areas {
		for j := 0; j < cfg.PlayersPerArea; j++ {
			t.Players = append(t.Players, PlayerInfo{
				ID:   fmt.Sprintf("player%d", len(t.Players)),
				Area: a.CD(),
			})
		}
	}

	span := int64(cfg.MaxInterval - cfg.MinInterval)
	sizeSpan := cfg.MaxUpdateSize - cfg.MinUpdateSize + 1
	for pi, p := range t.Players {
		area, _ := w.Map.Area(p.Area)
		visible := w.VisibleObjects(area)
		at := time.Duration(rnd.Int63n(int64(cfg.MinInterval))) // desynchronized start
		for at < cfg.Duration {
			u := Update{
				At:     at,
				Player: pi,
				Size:   cfg.MinUpdateSize + rnd.Intn(sizeSpan),
			}
			if len(visible) > 0 {
				obj := visible[rnd.Intn(len(visible))]
				u.CD = obj.Leaf
				u.Object = obj.ID
			} else {
				u.CD = area.PublishCD()
			}
			t.Updates = append(t.Updates, u)
			step := cfg.MinInterval
			if span > 0 {
				step += time.Duration(rnd.Int63n(span))
			}
			at += step
		}
	}
	t.Sort()
	return t, nil
}

// ActivityCDF returns the sorted per-player update counts together with
// cumulative fractions — the data behind Fig. 3c.
func ActivityCDF(t *Trace) ([]int, []float64) {
	counts := t.UpdatesPerPlayer()
	sort.Ints(counts)
	fracs := make([]float64, len(counts))
	for i := range counts {
		fracs[i] = float64(i+1) / float64(len(counts))
	}
	return counts, fracs
}
