package gamemap

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/icn-gaming/gcopss/internal/cd"
)

func grid55(t *testing.T) *Map {
	t.Helper()
	m, err := NewGrid(5, 5)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	return m
}

func area(t *testing.T, m *Map, key string) *Area {
	t.Helper()
	a, ok := m.Area(cd.MustParse(key))
	if !ok {
		t.Fatalf("area %q not found", key)
	}
	return a
}

func TestGridStructure(t *testing.T) {
	m := grid55(t)
	// 31 leaves: 25 zones + 5 region airspaces + 1 world airspace.
	if got := m.LeafCount(); got != 31 {
		t.Errorf("LeafCount = %d, want 31", got)
	}
	if got := len(m.Areas()); got != 31 {
		t.Errorf("areas = %d, want 31 (1 world + 5 regions + 25 zones)", got)
	}
	if got := m.RegionNames(); !reflect.DeepEqual(got, []string{"1", "2", "3", "4", "5"}) {
		t.Errorf("RegionNames = %v", got)
	}
	root := m.Root()
	if root.IsLeaf() || root.Depth() != 0 || root.Parent() != nil {
		t.Error("root misconfigured")
	}
	if len(root.Children()) != 5 {
		t.Errorf("root children = %d", len(root.Children()))
	}
	z := area(t, m, "/3/4")
	if !z.IsLeaf() || z.Depth() != 2 {
		t.Error("zone misclassified")
	}
	if z.Parent() != area(t, m, "/3") {
		t.Error("zone parent wrong")
	}
	if _, ok := m.Area(cd.MustParse("/9")); ok {
		t.Error("phantom area found")
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid(0, 5); err == nil {
		t.Error("NewGrid(0,5) accepted")
	}
	if _, err := NewGrid(5, 0); err == nil {
		t.Error("NewGrid(5,0) accepted")
	}
}

func TestLeafAndPublishCDs(t *testing.T) {
	m := grid55(t)
	tests := []struct {
		area string
		leaf string
	}{
		{"", "/"},        // world → world airspace
		{"/1", "/1/"},    // region → region airspace
		{"/1/2", "/1/2"}, // zone → itself
	}
	for _, tt := range tests {
		a := area(t, m, tt.area)
		if got := a.LeafCD(); got != cd.MustParse(tt.leaf) {
			t.Errorf("LeafCD(%q) = %v, want %v", tt.area, got, tt.leaf)
		}
		if got := a.PublishCD(); got != cd.MustParse(tt.leaf) {
			t.Errorf("PublishCD(%q) = %v", tt.area, got)
		}
		back, ok := m.AreaOfLeaf(cd.MustParse(tt.leaf))
		if !ok || back != a {
			t.Errorf("AreaOfLeaf(%q) failed", tt.leaf)
		}
	}
}

func TestSubscriptionCDsMatchPaper(t *testing.T) {
	m := grid55(t)
	tests := []struct {
		area string
		want []string
	}{
		// "a player standing on 1/2 should subscribe to /, /1/ ... and /1/2"
		{"/1/2", []string{"/1/2", "/1/", "/"}},
		// "the player can therefore subscribe to / ... and /1"
		{"/1", []string{"/1", "/"}},
		// The satellite's aggregated subscription is the root.
		{"", []string{""}},
	}
	for _, tt := range tests {
		a := area(t, m, tt.area)
		got := a.SubscriptionCDs()
		want := make([]cd.CD, len(tt.want))
		for i, s := range tt.want {
			want[i] = cd.MustParse(s)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("SubscriptionCDs(%q) = %v, want %v", tt.area, got, want)
		}
	}
}

func TestVisibleLeaves(t *testing.T) {
	m := grid55(t)
	// Zone /1/2 sees itself, planes over region 1, and the satellite layer.
	got := area(t, m, "/1/2").VisibleLeaves()
	want := []cd.CD{cd.MustParse("/"), cd.MustParse("/1/"), cd.MustParse("/1/2")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zone VisibleLeaves = %v", got)
	}
	// Region 1 flyer sees its 5 zones, its own airspace and the top.
	got = area(t, m, "/1").VisibleLeaves()
	if len(got) != 7 {
		t.Errorf("region VisibleLeaves = %v (len %d, want 7)", got, len(got))
	}
	// The satellite sees all 31 leaves.
	if got := m.Root().VisibleLeaves(); len(got) != 31 {
		t.Errorf("world VisibleLeaves = %d, want 31", len(got))
	}
}

func TestClassifyMoveTableIII(t *testing.T) {
	m := grid55(t)
	tests := []struct {
		from, to string
		want     MoveType
		snaps    int // leaf CDs to download, per Table III
	}{
		{"/1", "/1/1", MoveToLowerLayer, 0},          // plane landing
		{"", "/1", MoveToLowerLayer, 0},              // satellite descending
		{"/1/1", "/1", MoveZoneToRegion, 4},          // plane take-off
		{"/1", "", MoveRegionToWorld, 24},            // launching a satellite
		{"/1/1", "/1/2", MoveZoneSameRegion, 1},      // soldier within country
		{"/2/3", "/3/2", MoveZoneDifferentRegion, 2}, // soldier across border
		{"/1", "/2", MoveRegionToRegion, 6},          // plane across border
	}
	for _, tt := range tests {
		from, to := area(t, m, tt.from), area(t, m, tt.to)
		got, err := ClassifyMove(from, to)
		if err != nil {
			t.Fatalf("ClassifyMove(%q→%q): %v", tt.from, tt.to, err)
		}
		if got != tt.want {
			t.Errorf("ClassifyMove(%q→%q) = %v, want %v", tt.from, tt.to, got, tt.want)
		}
		if snaps := SnapshotCDs(from, to); len(snaps) != tt.snaps {
			t.Errorf("SnapshotCDs(%q→%q) = %v (len %d, want %d)", tt.from, tt.to, snaps, len(snaps), tt.snaps)
		}
	}
	if _, err := ClassifyMove(nil, m.Root()); err == nil {
		t.Error("nil area accepted")
	}
	if _, err := ClassifyMove(m.Root(), m.Root()); err == nil {
		t.Error("no-op move accepted")
	}
}

func TestSnapshotCDsContents(t *testing.T) {
	m := grid55(t)
	// Zone→region: exactly the four sibling zones.
	snaps := SnapshotCDs(area(t, m, "/1/1"), area(t, m, "/1"))
	want := []cd.CD{cd.MustParse("/1/2"), cd.MustParse("/1/3"), cd.MustParse("/1/4"), cd.MustParse("/1/5")}
	if !reflect.DeepEqual(snaps, want) {
		t.Errorf("snaps = %v, want %v", snaps, want)
	}
	// Cross-border zone move: new zone + new region airspace.
	snaps = SnapshotCDs(area(t, m, "/2/3"), area(t, m, "/3/2"))
	want = []cd.CD{cd.MustParse("/3/"), cd.MustParse("/3/2")}
	if !reflect.DeepEqual(snaps, want) {
		t.Errorf("snaps = %v, want %v", snaps, want)
	}
}

func TestPlayerMove(t *testing.T) {
	m := grid55(t)
	p := NewPlayer("p1", area(t, m, "/1/1"))
	if p.PublishCD() != cd.MustParse("/1/1") {
		t.Errorf("PublishCD = %v", p.PublishCD())
	}
	res, err := p.Move(area(t, m, "/1"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Type != MoveZoneToRegion {
		t.Errorf("Type = %v", res.Type)
	}
	// /1/1 and /1/ out; /1 in; / persists.
	if !reflect.DeepEqual(res.Unsubscribe, []cd.CD{cd.MustParse("/1/"), cd.MustParse("/1/1")}) {
		t.Errorf("Unsubscribe = %v", res.Unsubscribe)
	}
	if !reflect.DeepEqual(res.Subscribe, []cd.CD{cd.MustParse("/1")}) {
		t.Errorf("Subscribe = %v", res.Subscribe)
	}
	if len(res.Snapshots) != 4 {
		t.Errorf("Snapshots = %v", res.Snapshots)
	}
	if p.Area() != area(t, m, "/1") {
		t.Error("player did not move")
	}
	if got := p.SubscriptionCDs(); len(got) != 2 {
		t.Errorf("SubscriptionCDs = %v", got)
	}
}

func TestMoveTypeStrings(t *testing.T) {
	for _, mt := range MoveTypes() {
		if mt.String() == "" || mt.String()[0] == 'M' {
			t.Errorf("MoveType %d has no label: %q", int(mt), mt.String())
		}
	}
	if MoveType(0).String() != "MoveType(0)" {
		t.Error("zero MoveType should render as invalid")
	}
}

func TestObjectDecayFormula(t *testing.T) {
	o := NewObject("o1", cd.MustParse("/1/1"), 0.95)
	if o.Size != 0 || o.Version != 0 {
		t.Fatal("fresh object not at version 0")
	}
	// Apply updates of 100 bytes each; S_n = 0.95·S_{n-1} + 100.
	var want float64
	for i := 0; i < 50; i++ {
		o.ApplyUpdate(100)
		want = 0.95*want + 100
	}
	if o.Size != want {
		t.Errorf("Size = %f, want %f", o.Size, want)
	}
	if o.Version != 50 || o.Updates != 50 {
		t.Errorf("Version/Updates = %d/%d", o.Version, o.Updates)
	}
	// The geometric series converges to updSize/(1-λ) = 2000.
	for i := 0; i < 2000; i++ {
		o.ApplyUpdate(100)
	}
	if o.Size < 1990 || o.Size > 2000 {
		t.Errorf("steady-state Size = %f, want ≈2000", o.Size)
	}
	// Degenerate decay falls back to the default.
	o2 := NewObject("o2", cd.MustParse("/1/1"), 7.5)
	o2.ApplyUpdate(100)
	o2.ApplyUpdate(100)
	if o2.Size != DefaultDecay*100+100 {
		t.Errorf("default decay not applied: %f", o2.Size)
	}
	if o.CDName() != "/snapshot/1/1/o1" {
		t.Errorf("CDName = %q", o.CDName())
	}
}

func TestPopulateObjectsPaperCounts(t *testing.T) {
	m := grid55(t)
	w := NewWorld(m)
	counts := PaperObjectCounts()
	if err := w.PopulateObjects(counts, 0, rand.New(rand.NewSource(3))); err != nil {
		t.Fatal(err)
	}
	if got := w.ObjectCount(); got != 3197 {
		t.Errorf("ObjectCount = %d, want 3197", got)
	}
	top := len(w.ObjectsAt(cd.MustParse("/")))
	if top != 87 {
		t.Errorf("top objects = %d, want 87", top)
	}
	var middle, bottom int
	for _, r := range []string{"1", "2", "3", "4", "5"} {
		middle += len(w.ObjectsAt(cd.MustNew(r, ""))) // region r's airspace leaf
		for z := 1; z <= 5; z++ {
			bottom += len(w.ObjectsAt(cd.MustNew(r, string(rune('0'+z)))))
		}
	}
	if middle != 483 {
		t.Errorf("middle objects = %d, want 483", middle)
	}
	if bottom != 2627 {
		t.Errorf("bottom objects = %d, want 2627", bottom)
	}
	// Per-zone counts stay within a plausible band around the mean (105).
	for z := 1; z <= 5; z++ {
		n := len(w.ObjectsAt(cd.MustNew("1", string(rune('0'+z)))))
		if n < 50 || n > 160 {
			t.Errorf("zone 1/%d objects = %d, outside [50,160]", z, n)
		}
	}
}

func TestVisibleObjects(t *testing.T) {
	m := grid55(t)
	w := NewWorld(m)
	if err := w.PopulateObjects(ObjectCounts{Top: 10, Middle: 25, Bottom: 50}, 0, nil); err != nil {
		t.Fatal(err)
	}
	// A soldier in /1/1 sees: zone objects (50/25=2) + region-1 airspace
	// objects (25/5=5) + top objects (10).
	zone := area(t, m, "/1/1")
	got := w.VisibleObjects(zone)
	if len(got) != 2+5+10 {
		t.Errorf("soldier sees %d objects, want 17", len(got))
	}
	// The satellite sees everything.
	if got := w.VisibleObjects(m.Root()); len(got) != 85 {
		t.Errorf("satellite sees %d objects, want 85", len(got))
	}
}

func TestSnapshotSize(t *testing.T) {
	m := grid55(t)
	w := NewWorld(m)
	if err := w.PopulateObjects(ObjectCounts{Top: 2, Middle: 5, Bottom: 25}, 0, nil); err != nil {
		t.Fatal(err)
	}
	leaf := cd.MustParse("/")
	if got := w.SnapshotSize(leaf); got != 0 {
		t.Errorf("fresh snapshot size = %f, want 0 (version-0 objects ship with the map)", got)
	}
	objs := w.ObjectsAt(leaf)
	objs[0].ApplyUpdate(100)
	objs[1].ApplyUpdate(200)
	if got := w.SnapshotSize(leaf); got != 300 {
		t.Errorf("snapshot size = %f, want 300", got)
	}
}

func TestCustomDeepMap(t *testing.T) {
	// Three-layer map: region 1 zone 1 subdivided into 2 sub-zones.
	m, err := NewGrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	z11, _ := m.Area(cd.MustParse("/1/1"))
	if _, err := m.AddSubArea(z11, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSubArea(z11, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSubArea(z11, "a"); err == nil {
		t.Error("duplicate sub-area accepted")
	}
	m.Freeze()
	// /1/1 is now internal: its leaf is /1/1/.
	if got := z11.LeafCD(); got != cd.MustParse("/1/1/") {
		t.Errorf("LeafCD = %v", got)
	}
	sub, _ := m.Area(cd.MustParse("/1/1/a"))
	got := sub.SubscriptionCDs()
	want := []cd.CD{cd.MustParse("/1/1/a"), cd.MustParse("/1/1/"), cd.MustParse("/1/"), cd.MustParse("/")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("deep SubscriptionCDs = %v, want %v", got, want)
	}
	// Leaves: 4 original zones -1 now internal +2 sub-zones +1 airspace of
	// /1/1 + 2 region airspaces + 1 world airspace = 9.
	if got := m.LeafCount(); got != 9 {
		t.Errorf("LeafCount = %d, want 9", got)
	}
}
