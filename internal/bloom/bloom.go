// Package bloom provides the Bloom filters used by the COPSS Subscription
// Table fast path. The paper stores, per face, a Bloom filter over the
// subscribed CDs so that forwarding a Multicast packet reduces to a few bit
// probes per prefix of the packet's CD.
//
// The implementation uses double hashing over two 64-bit FNV-1a derived
// values (Kirsch–Mitzenmacher), which needs only the standard library.
package bloom

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Filter is a fixed-size Bloom filter. The zero value is unusable; construct
// with New or NewWithEstimates.
type Filter struct {
	bits []uint64
	m    uint64 // number of bits
	k    uint64 // number of hash functions
	n    uint64 // number of inserted elements (approximate if duplicates)
}

// New creates a filter with m bits and k hash functions. m is rounded up to
// a multiple of 64 and forced to be at least 64; k is clamped to [1, 32].
func New(m, k uint64) *Filter {
	if m < 64 {
		m = 64
	}
	m = (m + 63) / 64 * 64
	if k < 1 {
		k = 1
	}
	if k > 32 {
		k = 32
	}
	return &Filter{bits: make([]uint64, m/64), m: m, k: k}
}

// NewWithEstimates creates a filter sized for n expected elements at the
// given target false-positive probability p (0 < p < 1).
func NewWithEstimates(n uint64, p float64) *Filter {
	if n == 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(float64(n) * math.Log(p) / math.Log(1/math.Pow(2, math.Ln2))))
	k := uint64(math.Round(float64(m) / float64(n) * math.Ln2))
	return New(m, k)
}

// HashPair is the precomputed double-hashing state of one key. The paper's
// first-hop optimization ("calculate the hash values at the 1st hop router
// and the routers forward hash values along with the names. So routers only
// need to perform simple bit comparison") ships these pairs inside packets
// so downstream Subscription Tables probe without re-hashing.
type HashPair struct {
	H1, H2 uint64
}

// Hash derives the double-hashing pair for a key.
func Hash(data []byte) HashPair {
	h := fnv.New64a()
	h.Write(data) //nolint:errcheck // fnv never errors
	h1 := h.Sum64()
	// Derive a second, independent-enough value by hashing h1's bytes with a
	// different seed byte prepended.
	var buf [9]byte
	buf[0] = 0x9e
	binary.LittleEndian.PutUint64(buf[1:], h1)
	h2h := fnv.New64a()
	h2h.Write(buf[:]) //nolint:errcheck
	h2 := h2h.Sum64()
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15 // avoid a degenerate stride
	}
	return HashPair{H1: h1, H2: h2}
}

// HashString derives the pair for a string key.
func HashString(s string) HashPair { return Hash([]byte(s)) }

// Add inserts data into the filter.
func (f *Filter) Add(data []byte) {
	f.AddPair(Hash(data))
}

// AddPair inserts a precomputed key.
func (f *Filter) AddPair(p HashPair) {
	for i := uint64(0); i < f.k; i++ {
		idx := (p.H1 + i*p.H2) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.n++
}

// AddString inserts a string key.
func (f *Filter) AddString(s string) { f.Add([]byte(s)) }

// Test reports whether data may have been inserted. False positives are
// possible; false negatives are not.
func (f *Filter) Test(data []byte) bool {
	return f.TestPair(Hash(data))
}

// TestPair probes with a precomputed key — the "simple bit comparison" fast
// path of the first-hop hash optimization.
func (f *Filter) TestPair(p HashPair) bool {
	for i := uint64(0); i < f.k; i++ {
		idx := (p.H1 + i*p.H2) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// TestString reports possible membership of a string key.
func (f *Filter) TestString(s string) bool { return f.Test([]byte(s)) }

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.n = 0
}

// Count returns the number of Add calls since construction or Reset.
func (f *Filter) Count() uint64 { return f.n }

// Bits returns the filter size in bits.
func (f *Filter) Bits() uint64 { return f.m }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() uint64 { return f.k }

// FillRatio returns the fraction of set bits, a congestion indicator for
// deciding when to rebuild the filter larger.
func (f *Filter) FillRatio() float64 {
	var set int
	for _, w := range f.bits {
		set += popcount(w)
	}
	return float64(set) / float64(f.m)
}

// EstimatedFalsePositiveRate returns the expected false-positive probability
// for the current fill, (1 - e^{-kn/m})^k.
func (f *Filter) EstimatedFalsePositiveRate() float64 {
	return math.Pow(1-math.Exp(-float64(f.k)*float64(f.n)/float64(f.m)), float64(f.k))
}

// Union merges other into f. Both filters must have identical geometry.
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("bloom: geometry mismatch: (%d,%d) vs (%d,%d)", f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	f.n += other.n
	return nil
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	out := &Filter{bits: make([]uint64, len(f.bits)), m: f.m, k: f.k, n: f.n}
	copy(out.bits, f.bits)
	return out
}

// MarshalBinary encodes the filter geometry and bits. It implements
// encoding.BinaryMarshaler so filters can travel in control packets (the
// paper's first-hop hash optimization ships precomputed hash state).
func (f *Filter) MarshalBinary() ([]byte, error) {
	out := make([]byte, 24+len(f.bits)*8)
	binary.BigEndian.PutUint64(out[0:], f.m)
	binary.BigEndian.PutUint64(out[8:], f.k)
	binary.BigEndian.PutUint64(out[16:], f.n)
	for i, w := range f.bits {
		binary.BigEndian.PutUint64(out[24+i*8:], w)
	}
	return out, nil
}

// UnmarshalBinary decodes a filter previously encoded with MarshalBinary.
func (f *Filter) UnmarshalBinary(data []byte) error {
	if len(data) < 24 {
		return fmt.Errorf("bloom: short buffer: %d bytes", len(data))
	}
	m := binary.BigEndian.Uint64(data[0:])
	k := binary.BigEndian.Uint64(data[8:])
	n := binary.BigEndian.Uint64(data[16:])
	if m == 0 || m%64 != 0 || uint64(len(data)-24) != m/8 {
		return fmt.Errorf("bloom: inconsistent geometry m=%d len=%d", m, len(data))
	}
	f.m, f.k, f.n = m, k, n
	f.bits = make([]uint64, m/64)
	for i := range f.bits {
		f.bits[i] = binary.BigEndian.Uint64(data[24+i*8:])
	}
	return nil
}

func popcount(x uint64) int {
	// Hacker's Delight bit-twiddling population count.
	x -= (x >> 1) & 0x5555555555555555
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}
