package bloom

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddTest(t *testing.T) {
	f := New(1024, 4)
	keys := []string{"/", "/1", "/1/2", "/sports/football", "(root)"}
	for _, k := range keys {
		f.AddString(k)
	}
	for _, k := range keys {
		if !f.TestString(k) {
			t.Errorf("false negative for %q", k)
		}
	}
	if f.Count() != uint64(len(keys)) {
		t.Errorf("Count = %d", f.Count())
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := func(keys []string) bool {
		bf := NewWithEstimates(uint64(len(keys))+1, 0.01)
		for _, k := range keys {
			bf.AddString(k)
		}
		for _, k := range keys {
			if !bf.TestString(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFalsePositiveRateBounded(t *testing.T) {
	const n = 5000
	bf := NewWithEstimates(n, 0.01)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		bf.AddString(fmt.Sprintf("member-%d-%d", i, r.Int63()))
	}
	fp := 0
	const probes = 20000
	for i := 0; i < probes; i++ {
		if bf.TestString(fmt.Sprintf("nonmember-%d", i)) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.03 { // 3× the design target leaves headroom for hash variance
		t.Errorf("false positive rate %.4f exceeds bound", rate)
	}
	if est := bf.EstimatedFalsePositiveRate(); est > 0.02 {
		t.Errorf("estimated fp rate %.4f unexpectedly high", est)
	}
}

func TestGeometryClamping(t *testing.T) {
	f := New(1, 0)
	if f.Bits() != 64 || f.Hashes() != 1 {
		t.Errorf("clamped geometry = (%d,%d)", f.Bits(), f.Hashes())
	}
	f = New(100, 100)
	if f.Bits()%64 != 0 || f.Hashes() != 32 {
		t.Errorf("clamped geometry = (%d,%d)", f.Bits(), f.Hashes())
	}
	f = NewWithEstimates(0, 2.0) // degenerate inputs fall back to defaults
	if f.Bits() == 0 {
		t.Error("NewWithEstimates produced empty filter")
	}
}

func TestReset(t *testing.T) {
	f := New(256, 3)
	f.AddString("x")
	f.Reset()
	if f.TestString("x") {
		t.Error("Reset did not clear bits")
	}
	if f.Count() != 0 || f.FillRatio() != 0 {
		t.Error("Reset did not clear counters")
	}
}

func TestUnion(t *testing.T) {
	a, b := New(256, 3), New(256, 3)
	a.AddString("a")
	b.AddString("b")
	if err := a.Union(b); err != nil {
		t.Fatalf("Union: %v", err)
	}
	if !a.TestString("a") || !a.TestString("b") {
		t.Error("Union lost members")
	}
	c := New(512, 3)
	if err := a.Union(c); err == nil {
		t.Error("Union should reject geometry mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(256, 3)
	a.AddString("a")
	b := a.Clone()
	b.AddString("b")
	if a.TestString("b") && a.FillRatio() == b.FillRatio() {
		t.Error("Clone shares storage with original")
	}
	if !b.TestString("a") {
		t.Error("Clone lost member")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	a := New(512, 5)
	for i := 0; i < 40; i++ {
		a.AddString(fmt.Sprintf("k%d", i))
	}
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatalf("MarshalBinary: %v", err)
	}
	var b Filter
	if err := b.UnmarshalBinary(data); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	for i := 0; i < 40; i++ {
		if !b.TestString(fmt.Sprintf("k%d", i)) {
			t.Errorf("member k%d lost in round trip", i)
		}
	}
	if b.Bits() != a.Bits() || b.Hashes() != a.Hashes() || b.Count() != a.Count() {
		t.Error("geometry lost in round trip")
	}
	if err := b.UnmarshalBinary(data[:10]); err == nil {
		t.Error("UnmarshalBinary should reject short buffers")
	}
	if err := b.UnmarshalBinary(data[:30]); err == nil {
		t.Error("UnmarshalBinary should reject inconsistent lengths")
	}
}

func TestFillRatioMonotone(t *testing.T) {
	f := New(1024, 4)
	prev := 0.0
	for i := 0; i < 100; i++ {
		f.AddString(fmt.Sprintf("k%d", i))
		cur := f.FillRatio()
		if cur < prev {
			t.Fatalf("fill ratio decreased: %f -> %f", prev, cur)
		}
		prev = cur
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("fill ratio out of range: %f", prev)
	}
}

func BenchmarkAdd(b *testing.B) {
	f := NewWithEstimates(10000, 0.01)
	key := []byte("/1/2/some-object-name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(key)
	}
}

func BenchmarkTest(b *testing.B) {
	f := NewWithEstimates(10000, 0.01)
	for i := 0; i < 1000; i++ {
		f.AddString(fmt.Sprintf("/k/%d", i))
	}
	key := []byte("/1/2/some-object-name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Test(key)
	}
}
