package testbed

import (
	"fmt"
	"strings"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/stats"
	"github.com/icn-gaming/gcopss/internal/topo"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// ipAddr builds the destination address carried in the packet name. All
// machines run "an application-level forwarding engine ... forwarding
// packets based on the destination address".
func ipAddr(dest string) string { return "/ip/" + dest }

// RunIPServer executes the microbenchmark on the IP client/server baseline:
// application-level forwarders in the Fig. 3b topology, a server attached to
// R1, players unicasting updates to the server, and the server unicasting a
// copy to every interested player.
func RunIPServer(s *Setup) (*MicroResult, error) {
	tb := New(WithWorkers(s.Workers))
	res := &MicroResult{Latency: &stats.Sample{}}

	vis, err := visibilityIndex(s)
	if err != nil {
		return nil, err
	}
	attach := attachment(len(s.Trace.Players))

	// Precomputed per-player names: the server resolves recipients on every
	// update, so building "playerN" / "/ip/playerN" there would allocate per
	// delivered copy.
	clientNames := make([]string, len(s.Trace.Players))
	ipNames := make([]string, len(s.Trace.Players))
	for pi := range s.Trace.Players {
		clientNames[pi] = clientName(pi)
		ipNames[pi] = ipAddr(clientNames[pi])
	}

	// Static routing: next hop per destination node, derived from the
	// benchmark topology.
	g, ids := topo.Benchmark()
	paths := g.AllPairs()
	names := []string{"R1", "R2", "R3", "R4", "R5", "R6"}

	// Face plan: on each router, face i+10 leads to neighbor names[i]; client
	// faces are allocated from 100 upward.
	faceToward := make(map[string]map[string]ndn.FaceID)
	for _, n := range names {
		faceToward[n] = make(map[string]ndn.FaceID)
	}
	// hostRouter maps every endpoint (clients + server) to its router and
	// the router-side face.
	type hostPort struct {
		router string
		face   ndn.FaceID
	}
	hosts := make(map[string]hostPort)

	routes := make(map[string]map[string]ndn.FaceID) // router → dest endpoint → face
	for _, n := range names {
		routes[n] = make(map[string]ndn.FaceID)
	}

	// Router handler: forward by destination address. routes is read-only
	// once Run starts, so concurrent shards may share it.
	for _, n := range names {
		n := n
		tb.AddNode(n, func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, sink ndn.ActionSink) {
			dest := strings.TrimPrefix(pkt.Name, "/ip/")
			face, ok := routes[n][dest]
			if !ok {
				return
			}
			sink.Emit(ndn.Action{Face: face, Packet: pkt.Forward()})
		}, func(*wire.Packet) time.Duration { return s.Costs.IPForward }, 0)
	}
	type edge struct{ a, b string }
	var nextFace = map[string]ndn.FaceID{}
	alloc := func(r string) ndn.FaceID {
		nextFace[r]++
		return nextFace[r]
	}
	for _, e := range []edge{{"R1", "R2"}, {"R1", "R3"}, {"R2", "R4"}, {"R2", "R5"}, {"R3", "R6"}} {
		fa, fb := alloc(e.a), alloc(e.b)
		faceToward[e.a][e.b] = fa
		faceToward[e.b][e.a] = fb
		if err := tb.Connect(e.a, fa, e.b, fb, s.LinkDelay); err != nil {
			return nil, err
		}
	}

	// Server endpoint on R1: resolves recipients and unicasts copies. The
	// per-recipient serialization cost is the node's per-copy surcharge.
	const serverName = "server"
	tb.AddNode(serverName, func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, sink ndn.ActionSink) {
		if len(pkt.CDs) != 1 {
			return
		}
		for _, pi := range vis[pkt.CDs[0].Key()] {
			if clientNames[pi] == pkt.Origin {
				continue
			}
			// COW shallow copy: each unicast copy readdresses the shared
			// payload without duplicating it.
			cp := *pkt
			cp.Name = ipNames[pi]
			sink.Emit(ndn.Action{Face: 0, Packet: &cp})
		}
	}, func(*wire.Packet) time.Duration { return s.Costs.ServerBase }, s.Costs.ServerPerRecipient)
	sf := alloc("R1")
	if err := tb.Connect(serverName, 0, "R1", sf, s.LinkDelay); err != nil {
		return nil, err
	}
	hosts[serverName] = hostPort{router: "R1", face: sf}

	// Player endpoints, accumulating deliveries per client (merged in player
	// order after the run).
	accs := make([]clientAcc, len(s.Trace.Players))
	for pi := range s.Trace.Players {
		name := clientName(pi)
		acc := &accs[pi]
		tb.AddNode(name, func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, _ ndn.ActionSink) {
			acc.lat.Add(float64(now.UnixNano()-pkt.SentAt) / 1e6)
			acc.deliveries++
		}, func(*wire.Packet) time.Duration { return s.Costs.HostProc }, 0)
		rf := alloc(attach[pi])
		if err := tb.Connect(name, 0, attach[pi], rf, s.LinkDelay); err != nil {
			return nil, err
		}
		hosts[name] = hostPort{router: attach[pi], face: rf}
	}

	// Routing tables: for every endpoint, every router forwards toward the
	// endpoint's attachment router, then onto the host port.
	for dest, hp := range hosts {
		for _, r := range names {
			if r == hp.router {
				routes[r][dest] = hp.face
				continue
			}
			nh, ok := paths.NextHop(ids[r], ids[hp.router])
			if !ok {
				return nil, fmt.Errorf("testbed: no route %s→%s", r, hp.router)
			}
			for name, id := range ids {
				if id == nh {
					routes[r][dest] = faceToward[r][name]
				}
			}
		}
	}

	// Publish events: unicast the update to the server.
	t0 := tb.Now()
	start := t0.Add(s.Warmup)
	for i, u := range s.Trace.Updates {
		u := u
		seq := uint64(i + 1)
		tb.Schedule(start.Add(u.At), func(now time.Time) {
			res.Published++
			tb.Emit(now, clientNames[u.Player], []ndn.Action{{Face: 0, Packet: &wire.Packet{
				Type:    wire.TypeData,
				Name:    ipAddr(serverName),
				CDs:     []cd.CD{u.CD},
				Origin:  clientNames[u.Player],
				Seq:     seq,
				Payload: make([]byte, u.Size),
				SentAt:  now.UnixNano(),
			}}})
		})
	}

	deadline := start.Add(s.Trace.Duration + s.Drain)
	if err := tb.Run(deadline, 0); err != nil {
		return nil, err
	}
	mergeAccs(res, accs)
	res.PacketEvents, res.Bytes = tb.Stats()
	return res, nil
}
