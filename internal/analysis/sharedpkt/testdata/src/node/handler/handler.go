package handler

import (
	"internal/wire"
)

func badFieldWrite(pkt *wire.Packet) {
	pkt.Name = "/rewritten" // want "write to field Name of shared packet parameter pkt"
}

func badIncrement(pkt *wire.Packet) {
	pkt.HopCount++ // want "write to field HopCount of shared packet parameter pkt"
}

func badCompound(pkt *wire.Packet) {
	pkt.CtlSeq += 1 // want "write to field CtlSeq of shared packet parameter pkt"
}

func badElementWrite(pkt *wire.Packet) {
	pkt.CDs[0] = "/zone" // want "write into field CDs of shared packet parameter pkt"
}

func badOverwrite(pkt *wire.Packet) {
	*pkt = wire.Packet{} // want "overwrite through shared packet parameter pkt"
}

func badClosureParam() func(*wire.Packet) {
	return func(p *wire.Packet) {
		p.Name = "x" // want "write to field Name of shared packet parameter p"
	}
}

func goodCopyOnWrite(pkt *wire.Packet) *wire.Packet {
	cp := *pkt
	cp.Name = "/rewritten" // fresh object: private to this call
	cp.HopCount++
	return &cp
}

func goodPointerToLocal(pkt *wire.Packet) *wire.Packet {
	cp := *pkt
	snippet := &cp
	snippet.Payload = []byte("snippet") // points at the local copy, not the shared packet
	return snippet
}

func goodLocalPacket() *wire.Packet {
	p := &wire.Packet{}
	p.Name = "/fresh" // builder owns the packet until it is sent
	return p
}

func goodRead(pkt *wire.Packet) string {
	return pkt.Name
}

func goodForward(pkt *wire.Packet) *wire.Packet {
	return pkt.Forward()
}

func allowed(pkt *wire.Packet) {
	//lint:allow sharedpkt decoder refill, packet not yet shared
	pkt.Name = "/in-place"
}
