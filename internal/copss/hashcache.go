package copss

import (
	"github.com/icn-gaming/gcopss/internal/cd"
)

// hashCacheDefaultMax bounds the memoized CD population of a HashCache.
const hashCacheDefaultMax = 4096

// HashCache memoizes the flattened Bloom prefix-hash vector of hot CDs.
// The paper's first-hop optimization computes a publication CD's prefix
// hashes once, at the router closest to the publisher, and ships them in the
// packet (wire.Packet.CDHashes); a HashCache makes that one-time computation
// literally one-time per CD instead of one-time per packet, since game
// clients republish the same area CDs on every update.
//
// The returned vectors are shared between the cache and every packet they
// are stamped into, and must therefore be treated as immutable (the
// immutable-after-send packet discipline, DESIGN.md §11). A HashCache
// belongs to one router and is not safe for concurrent use.
type HashCache struct {
	flat map[string][]uint64
	max  int
}

// NewHashCache creates a cache bounded to max CDs (<=0 selects the default).
// When the bound is hit the cache resets wholesale — correctness is
// unaffected, the next lookups just rehash.
func NewHashCache(max int) *HashCache {
	if max <= 0 {
		max = hashCacheDefaultMax
	}
	return &HashCache{flat: make(map[string][]uint64, 64), max: max}
}

// FlatFor returns the flat (H1,H2 per prefix, shortest first) hash vector
// for c, memoized. The result aliases cache state: callers stamp it into
// packets but never mutate it.
func (hc *HashCache) FlatFor(c cd.CD) []uint64 {
	if flat, ok := hc.flat[c.Key()]; ok {
		return flat
	}
	flat := FlattenHashes(PrefixHashes(c))
	if len(hc.flat) >= hc.max {
		hc.flat = make(map[string][]uint64, 64)
	}
	hc.flat[c.Key()] = flat
	return flat
}

// Len returns the number of memoized CDs.
func (hc *HashCache) Len() int { return len(hc.flat) }
