package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/wire"
)

func TestFramingRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	want := &wire.Packet{
		Type:    wire.TypeMulticast,
		CDs:     []cd.CD{cd.MustParse("/1/2")},
		Origin:  "p1",
		Seq:     9,
		Payload: []byte("hello"),
	}
	done := make(chan error, 1)
	go func() { done <- ca.WritePacket(want) }()
	got, err := cb.ReadPacket()
	if err != nil {
		t.Fatalf("ReadPacket: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("WritePacket: %v", err)
	}
	if got.Origin != "p1" || got.Seq != 9 || string(got.Payload) != "hello" {
		t.Errorf("round trip corrupted: %+v", got)
	}
}

func TestFramingRejectsInvalid(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	if err := ca.WritePacket(&wire.Packet{}); err == nil {
		t.Error("invalid packet written")
	}
	// Garbage frame length.
	go func() {
		a.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) //nolint:errcheck
		a.Close()                               //nolint:errcheck
	}()
	if _, err := cb.ReadPacket(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestHelloHandshake(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() {
		ca.SendHello(PeerClient, "alice") //nolint:errcheck
	}()
	kind, name, err := cb.ReadHello(time.Second)
	if err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
	if kind != PeerClient || name != "alice" {
		t.Errorf("hello = %v %q", kind, name)
	}
}

func TestHelloRejectsNonHello(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()
	go func() {
		ca.WritePacket(&wire.Packet{Type: wire.TypeInterest, Name: "/x"}) //lint:allow errcheckedfaces peer rejects the non-hello; this side only provokes it
	}()
	if _, _, err := cb.ReadHello(time.Second); err == nil {
		t.Error("non-hello accepted")
	}
}

// startDaemon runs a silent daemon on a loopback listener.
func startDaemon(t *testing.T, ctx context.Context, name string) (*Daemon, string) {
	t.Helper()
	d := NewDaemon(name)
	d.SetLogger(func(string, ...interface{}) {})
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Run(ctx) //nolint:errcheck // cancelled at test end
	return d, addr.String()
}

func TestDaemonEndToEndPubSub(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Two routers: R1 (RP) ← R2; a subscriber on R2 and a publisher on R1.
	d1, addr1 := startDaemon(t, ctx, "R1")
	d2, addr2 := startDaemon(t, ctx, "R2")
	if err := d2.ConnectRouter(addr1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // link attachment settles

	info := copss.RPInfo{
		Name:     "/rp1",
		Prefixes: []cd.CD{cd.MustNew(""), cd.MustNew("1"), cd.MustNew("2")},
		Seq:      1,
	}
	if err := d1.BecomeRP(info); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // announcement flood settles

	sub, err := NewClient("soldier", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if err := sub.Subscribe(cd.MustParse("/1/2"), cd.MustParse("/1/"), cd.MustParse("/")); err != nil {
		t.Fatal(err)
	}

	pub, err := NewClient("plane", addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	time.Sleep(100 * time.Millisecond) // subscriptions settle

	if err := pub.Publish(cd.MustParse("/1/"), 1, []byte("flyover")); err != nil {
		t.Fatal(err)
	}

	type rx struct {
		pkt *wire.Packet
		err error
	}
	rxc := make(chan rx, 1)
	go func() {
		p, err := sub.Receive()
		rxc <- rx{p, err}
	}()
	select {
	case got := <-rxc:
		if got.err != nil {
			t.Fatalf("Receive: %v", got.err)
		}
		if got.pkt.Type != wire.TypeMulticast || string(got.pkt.Payload) != "flyover" {
			t.Errorf("received %+v", got.pkt)
		}
		if got.pkt.Origin != "plane" {
			t.Errorf("origin = %q", got.pkt.Origin)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("update never delivered over TCP")
	}

	// A publication outside the subscription must NOT be delivered: publish
	// to /2/9 and then to /1/2; the next received packet must be the latter.
	if err := pub.Publish(cd.MustParse("/2/9"), 2, []byte("invisible")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish(cd.MustParse("/1/2"), 3, []byte("visible")); err != nil {
		t.Fatal(err)
	}
	go func() {
		p, err := sub.Receive()
		rxc <- rx{p, err}
	}()
	select {
	case got := <-rxc:
		if got.err != nil {
			t.Fatalf("Receive: %v", got.err)
		}
		if string(got.pkt.Payload) != "visible" {
			t.Errorf("filtering failed: got %q", got.pkt.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("second update never delivered")
	}
}

func TestDaemonNDNQueryAcrossRouters(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d1, addr1 := startDaemon(t, ctx, "R1")
	d2, addr2 := startDaemon(t, ctx, "R2")
	if err := d2.ConnectRouter(addr1); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// Producer attaches to R1 and registers a FIB route for its prefix on
	// both routers (face 1 on R2 is its link to R1; the producer's face on
	// R1 is the next one the daemon allocates — discover it by attaching
	// first and then wiring the route via the router handle).
	producer, err := NewClient("producer", addr1)
	if err != nil {
		t.Fatal(err)
	}
	defer producer.Close()
	time.Sleep(100 * time.Millisecond)
	// The producer is the second face of R1 (after R2's link). FIB edits on
	// a running daemon go through Inspect.
	d1.Inspect(func(r *core.Router) { r.NDN().FIB().Add("/content", 2) })
	d2.Inspect(func(r *core.Router) { r.NDN().FIB().Add("/content", 1) })

	go func() {
		for {
			pkt, err := producer.Receive()
			if err != nil {
				return
			}
			if pkt.Type == wire.TypeInterest {
				producer.Send(&wire.Packet{ //lint:allow errcheckedfaces test producer: a torn-down face ends the loop via Receive
					Type:    wire.TypeData,
					Name:    pkt.Name,
					Payload: []byte("served:" + pkt.Name),
				})
			}
		}
	}()

	consumer, err := NewClient("consumer", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer consumer.Close()
	time.Sleep(100 * time.Millisecond)
	if err := consumer.Query("/content/map/v1"); err != nil {
		t.Fatal(err)
	}
	type rx struct {
		pkt *wire.Packet
		err error
	}
	rxc := make(chan rx, 1)
	go func() {
		p, err := consumer.Receive()
		rxc <- rx{p, err}
	}()
	select {
	case got := <-rxc:
		if got.err != nil {
			t.Fatalf("Receive: %v", got.err)
		}
		if got.pkt.Type != wire.TypeData || string(got.pkt.Payload) != "served:/content/map/v1" {
			t.Errorf("got %+v", got.pkt)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("NDN data never returned")
	}
}

func TestPeerKindString(t *testing.T) {
	if PeerRouter.String() != "router" || PeerClient.String() != "client" {
		t.Error("kind strings wrong")
	}
	if PeerKind(9).String() == "" {
		t.Error("invalid kind should render")
	}
}
