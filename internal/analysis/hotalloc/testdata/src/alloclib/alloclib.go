// Package alloclib exists to exercise the cross-package fact path: it
// exports functions that allocate, and the hot testdata package calls them
// from //gcopss:hotpath functions. It is listed before hot in the test so
// its facts are available (the dependency-order contract).
package alloclib

import "fmt"

// Describe allocates via fmt.Sprintf.
func Describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Wrap allocates one call deeper.
func Wrap(n int) string {
	return Describe(n)
}

// Double is allocation-free.
func Double(n int) int { return n * 2 }
