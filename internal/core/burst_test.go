package core

import (
	"bytes"
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// burstRouter builds a router with client faces 1..4 subscribed to /1 and
// faces 5..6 subscribed to /2, plus the upstream router face 1000 bursts
// arrive on. Two identical copies let the equivalence test diff the paths.
func burstRouter(t testing.TB) *Router {
	t.Helper()
	r := NewRouter("R")
	r.AddFace(1000, FaceRouter)
	for i := 1; i <= 6; i++ {
		f := ndn.FaceID(i)
		r.AddFace(f, FaceClient)
		sub := "/1"
		if i >= 5 {
			sub = "/2"
		}
		r.HandlePacket(time.Unix(0, 0), f, &wire.Packet{
			Type: wire.TypeSubscribe, CDs: []cd.CD{cd.MustParse(sub)},
		})
	}
	return r
}

func hashedMulticastFor(key string, seq uint64, hashes []uint64) *wire.Packet {
	c := cd.MustParse(key)
	if hashes == nil {
		hashes = copss.FlattenHashes(copss.PrefixHashes(c))
	}
	return &wire.Packet{
		Type: wire.TypeMulticast, CDs: []cd.CD{c}, Payload: []byte("mv"),
		Origin: "player-0", Seq: seq, SentAt: 5, CDHashes: hashes,
	}
}

// mixedBurst builds a burst interleaving groupable multicast runs with
// fallback traffic: two CDs, a shared-slice hash vector, an unhashed
// multicast, a flush marker, a Subscribe and an Ack.
func mixedBurst() []*wire.Packet {
	h12 := copss.FlattenHashes(copss.PrefixHashes(cd.MustParse("/1/2")))
	return []*wire.Packet{
		hashedMulticastFor("/1/2", 1, h12),
		hashedMulticastFor("/1/2", 2, h12), // same slice: pointer-equal group
		hashedMulticastFor("/1/2", 3, nil), // equal content, distinct slice
		hashedMulticastFor("/2/9", 4, nil), // new group: different CD
		{Type: wire.TypeMulticast, CDs: []cd.CD{cd.MustParse("/1/2")},
			Origin: FlushOrigin, Name: FlushOrigin + "/X"}, // fallback: marker
		{Type: wire.TypeSubscribe, CDs: []cd.CD{cd.MustParse("/1/7")}}, // fallback: ST mutation
		hashedMulticastFor("/1/2", 5, h12), // new run after the fallback break
		{Type: wire.TypeAck, CtlSeq: 99},   // fallback: consumed silently
		{Type: wire.TypeMulticast, CDs: []cd.CD{cd.MustParse("/1/2")}}, // no hashes: FacesFor path
	}
}

// TestHandleBurstMatchesSequential pins the burst contract: HandleBurst must
// emit exactly the action stream of calling HandlePacketTo on each packet in
// order — same faces, same packet bytes — and leave identical router stats.
func TestHandleBurstMatchesSequential(t *testing.T) {
	now := time.Unix(1, 0)
	pkts := mixedBurst()

	seq := burstRouter(t)
	var seqSink ndn.SliceSink
	for _, p := range pkts {
		seq.HandlePacketTo(now, 1000, p, &seqSink)
	}

	bur := burstRouter(t)
	var burSink ndn.SliceSink
	bur.HandleBurst(now, 1000, pkts, &burSink)

	if len(burSink.Actions) != len(seqSink.Actions) {
		t.Fatalf("burst emitted %d actions, sequential %d", len(burSink.Actions), len(seqSink.Actions))
	}
	for i := range seqSink.Actions {
		want, got := seqSink.Actions[i], burSink.Actions[i]
		if got.Face != want.Face {
			t.Fatalf("action %d: face %d, want %d", i, got.Face, want.Face)
		}
		wb, err1 := wire.Encode(want.Packet)
		gb, err2 := wire.Encode(got.Packet)
		if err1 != nil || err2 != nil {
			t.Fatalf("action %d: encode errs %v / %v", i, err1, err2)
		}
		if !bytes.Equal(wb, gb) {
			t.Fatalf("action %d: packet bytes differ\nburst: %x\nseq:   %x", i, gb, wb)
		}
	}
	if bur.Stats() != seq.Stats() {
		t.Errorf("stats diverged:\nburst: %+v\nseq:   %+v", bur.Stats(), seq.Stats())
	}
}

// TestHandleBurstSharesSlabCopies pins the slab fan-out: within one group all
// actions of one packet share one forwarding copy, distinct packets get
// distinct copies, and the copies share the arrival's payload and hashes.
func TestHandleBurstSharesSlabCopies(t *testing.T) {
	r := burstRouter(t)
	h := copss.FlattenHashes(copss.PrefixHashes(cd.MustParse("/1/2")))
	pkts := []*wire.Packet{
		hashedMulticastFor("/1/2", 1, h),
		hashedMulticastFor("/1/2", 2, h),
	}
	var sink ndn.SliceSink
	r.HandleBurst(time.Unix(1, 0), 1000, pkts, &sink)
	if len(sink.Actions) != 8 { // 2 packets × 4 subscribed faces under /1
		t.Fatalf("fan-out = %d actions, want 8", len(sink.Actions))
	}
	first, second := sink.Actions[0].Packet, sink.Actions[4].Packet
	for i := 0; i < 4; i++ {
		if sink.Actions[i].Packet != first {
			t.Fatalf("action %d: packet 1's fan-out must share one copy", i)
		}
		if sink.Actions[4+i].Packet != second {
			t.Fatalf("action %d: packet 2's fan-out must share one copy", 4+i)
		}
	}
	if first == second {
		t.Fatal("distinct packets shared a forwarding copy")
	}
	if first == pkts[0] || second == pkts[1] {
		t.Fatal("burst forwarded an arrival packet itself")
	}
	if &first.Payload[0] != &pkts[0].Payload[0] {
		t.Error("burst copied a payload; it must share it")
	}
	if &first.CDHashes[0] != &pkts[0].CDHashes[0] {
		t.Error("burst copied a CD hash vector; it must share it")
	}
	if first.HopCount != pkts[0].HopCount+1 {
		t.Errorf("HopCount = %d, want %d", first.HopCount, pkts[0].HopCount+1)
	}
}

// TestHandleBurstAllocBudget locks the amortized allocation budget of the
// satellite: at burst width >= 16 a warm grouped fan-out must cost strictly
// less than one allocation per packet (the whole burst shares one slab).
func TestHandleBurstAllocBudget(t *testing.T) {
	for _, width := range []int{16, 32} {
		r := fanOutRouter(t, 8)
		h := copss.FlattenHashes(copss.PrefixHashes(cd.MustParse("/1/2")))
		pkts := make([]*wire.Packet, width)
		for i := range pkts {
			pkts[i] = hashedMulticastFor("/1/2", uint64(i+1), h)
		}
		now := time.Unix(1, 0)
		var sink ndn.SliceSink
		r.HandleBurst(now, 1000, pkts, &sink) // warm ST scratch and sink capacity
		allocs := testing.AllocsPerRun(100, func() {
			sink.Reset()
			r.HandleBurst(now, 1000, pkts, &sink)
		})
		if perPkt := allocs / float64(width); perPkt >= 1 {
			t.Errorf("width %d: %v allocs/op = %v per packet, want < 1", width, allocs, perPkt)
		}
		if allocs > 2 {
			t.Errorf("width %d: %v allocs/op, want <= 2 (one slab + slack)", width, allocs)
		}
	}
}
