package transport

import (
	"context"
	"net"
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/faultnet"
	"github.com/icn-gaming/gcopss/internal/obs"
)

// faceCount reads the daemon's live face table size.
func faceCount(d *Daemon) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.faces)
}

// closeAllFaces force-closes every live connection (simulates link death).
func closeAllFaces(d *Daemon) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.faces {
		c.Close() //nolint:errcheck // deliberately killing the link
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStalledPeerIsDropped is the goroutine-leak regression: a peer that
// completes the hello, sends a partial frame and then stalls used to park
// the daemon's reader in io.ReadFull forever. With the idle read deadline
// the face must be torn down on its own.
func TestStalledPeerIsDropped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := NewDaemon("R1")
	d.SetLogger(func(string, ...interface{}) {})
	d.SetIdleTimeout(200 * time.Millisecond)
	addr, err := d.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Run(ctx) //nolint:errcheck // cancelled at test end

	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close() //nolint:errcheck
	if err := NewConn(nc).SendHello(PeerClient, "stall"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "face attach", func() bool { return faceCount(d) == 1 })
	// Send half a frame header, then go silent forever.
	if _, err := nc.Write([]byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "stalled face teardown", func() bool { return faceCount(d) == 0 })
}

// TestDaemonReconnectsDroppedNeighbor kills an established router-router
// link and expects the dialing side to re-dial with backoff, re-register the
// face and bump reconnects_total.
func TestDaemonReconnectsDroppedNeighbor(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d1, _ := startDaemon(t, ctx, "R1")
	d2, addr2 := startDaemon(t, ctx, "R2")

	reg := obs.NewRegistry()
	d1.Instrument(reg)
	if err := d1.ConnectRouter(addr2); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "initial link", func() bool { return faceCount(d1) == 1 && faceCount(d2) == 1 })

	// Kill the link from the accepting side; R1 (the dialer) re-establishes.
	closeAllFaces(d2)
	reconnects := reg.Counter("reconnects_total")
	waitFor(t, "reconnect", func() bool {
		return reconnects.Value() > 0 && faceCount(d1) == 1 && faceCount(d2) == 1
	})

	// The healed face is registered with the router again, as a router face
	// (so control-plane floods and ARQ treat it correctly).
	routerFaces := 0
	d1.Inspect(func(r *core.Router) {
		for _, id := range r.Faces() {
			if kind, ok := r.FaceKindOf(id); ok && kind == core.FaceRouter {
				routerFaces++
			}
		}
	})
	if routerFaces != 1 {
		t.Fatalf("router faces after reconnect = %d, want 1", routerFaces)
	}
	_ = addr2
}

// TestClientReconnect swaps the client onto a fresh connection after its
// link dies and verifies traffic resumes.
func TestClientReconnect(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d, addr := startDaemon(t, ctx, "R1")

	c, err := NewClient("c1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	reg := obs.NewRegistry()
	c.Instrument(reg)
	waitFor(t, "client attach", func() bool { return faceCount(d) == 1 })

	closeAllFaces(d)
	if _, err := c.Receive(); err == nil {
		t.Fatal("Receive on a dead link succeeded")
	}
	if err := c.Reconnect(nil); err != nil {
		t.Fatalf("Reconnect: %v", err)
	}
	if got := reg.Counter("reconnects_total").Value(); got != 1 {
		t.Fatalf("reconnects_total = %d, want 1", got)
	}
	// The new face carries traffic again (subscriptions are face state and
	// must be re-issued, which Subscribe here does).
	if err := c.Subscribe(cd.MustParse("/1/2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "fresh face", func() bool { return faceCount(d) == 1 })
}

// TestClientFaultInjection drops every uplink packet and expects the router
// to see none of them; loss is recorded by the injector.
func TestClientFaultInjection(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d, addr := startDaemon(t, ctx, "R1")

	spec, err := faultnet.ParseSpec("loss=1")
	if err != nil {
		t.Fatal(err)
	}
	in := faultnet.New(spec, 42)
	c, err := NewClient("c1", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close() //nolint:errcheck
	c.SetFaults(in)
	waitFor(t, "client attach", func() bool { return faceCount(d) == 1 })

	for i := 0; i < 20; i++ {
		if err := c.Publish(cd.MustParse("/1/2"), uint64(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := in.Stats().Dropped; got != 20 {
		t.Fatalf("injector dropped %d, want 20", got)
	}
	time.Sleep(100 * time.Millisecond)
	var pubs uint64
	d.Inspect(func(r *core.Router) { pubs = r.Stats().MulticastIn })
	if pubs != 0 {
		t.Fatalf("router saw %d publications through a loss=1 uplink", pubs)
	}
}
