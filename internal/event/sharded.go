package event

import (
	"fmt"
	"sync"
	"time"
)

// ShardedScheduler is a conservative parallel discrete-event executor in the
// classic lookahead style: hosts partition their stations (testbed nodes)
// across shards, and the scheduler alternates between
//
//   - global phases — ordinary Handler events (timers, injections, recurring
//     ticks) run single-threaded, exactly like the sequential Scheduler, and
//   - node windows — every shard i executes its queued node events with
//     at < end_i concurrently, where end_i is the earliest timestamp any
//     event still queued elsewhere could cause to land in shard i.
//
// Window ends are per shard and adaptive: SetLatencyMatrix installs the
// minimum event-chain latency between every pair of shards (the testbed
// derives it from link delays and the node→shard assignment), and each
// window computes
//
//	end_i = min(tg, deadline,
//	            min over shards j≠i of floor_j + C[j][i],
//	            floor_i + ret[i])
//
// where floor_j is the earliest event queued on shard j, tg the next global
// event, C the all-pairs shortest-path closure of the matrix, and ret[i] =
// min over j≠i of C[i][j] + C[j][i] the cheapest chain that leaves shard i
// and returns (a shard's own events bound its window too: their descendants
// can re-enter through another shard, riding mailboxes the next barrier's
// floors cannot see). A shard whose only inbound chains are slow therefore
// runs far ahead of the global floor instead of stalling at a barrier every
// global-minimum-latency step. The uniform SetLookahead(W) configuration is
// the special case C[j][i] = W for every pair (ret[i] = 2W), and per-shard
// ends are then never narrower than the old conservative global window
// min(tn+W, tg) — an invariant the unit suite pins.
//
// The lookahead invariant makes windows safe: an event executing at time t
// on shard j may cause an arrival on shard i (j ≠ i, possibly via other
// shards) only at t + C[j][i] or later, and an arrival back on its own
// shard only at t + ret[j] or later, so nothing executed during a window
// can land inside any shard's window, and the set of events a window
// executes is fixed at its barrier. Cross-shard
// posts are staged in per-(src,dst) mailboxes owned by the posting shard
// (no locks) and drained at the next barrier. Posts within a shard go
// straight into its heap and are picked up in (at, key) order by the same
// window — which is why the closure treats intra-shard chaining as free.
//
// Determinism does not depend on the worker count: node events are totally
// ordered by (at, key) with caller-chosen canonical keys (the testbed uses
// linkID<<32|perLinkSeq), every event of one station lives on one shard and
// executes in that order, and at a timestamp tie between a global event and
// a node event the global event runs first. Window boundaries do depend on
// the partition — that is the point of adaptivity — but boundaries only
// decide when work happens on the wall clock, never which events execute at
// which virtual time, so workers ∈ {1,2,...} produce identical traces.
//
// With neither a matrix nor a positive lookahead there is no safe window
// and RunUntil falls back to a strictly sequential merge of the global and
// shard queues.
type ShardedScheduler struct {
	global    *Scheduler
	shards    []*shard
	lookahead time.Duration
	closure   [][]time.Duration // shortest-path latency closure; nil until built
	ret       []time.Duration   // min round-trip leaving shard i and returning
	now       time.Time

	parallel bool // true only while a node window is executing

	nodeProcessed uint64
	windows       uint64
	windowStalls  uint64

	// Window scratch, coordinator-only (reused across windows so the inner
	// loop allocates nothing).
	floors   []time.Time
	hasFloor []bool
	ends     []time.Time
	preLens  []int

	// prof, when non-nil, accumulates wall-clock attribution (see
	// profile.go). internal/event is exempt from the clockfree rule: the
	// profiler measures real execution cost, not virtual time.
	prof *schedProf

	// barrierHook, when non-nil, runs single-threaded at every window
	// barrier, after the shards stop and before the clock advances. Hosts
	// that stage coalesced cross-shard work in their own rings (the
	// testbed's burst tx rings) flush them here: PostNode calls made from
	// the hook land in destination heaps at exactly the instant a mailbox
	// drain would have delivered the equivalent per-packet events.
	barrierHook func()
}

// NoRoute marks a shard pair with no event path in a latency matrix handed
// to SetLatencyMatrix: no event chain starting on the source shard can ever
// produce an event on the destination shard.
const NoRoute = time.Duration(-1)

// infDur is the internal "unreachable" distance. Small enough that one
// Floyd–Warshall addition cannot overflow, large enough that no real
// latency sum reaches it.
const infDur = time.Duration(1) << 61

// shard is one worker's event queue plus its outbound mailboxes.
type shard struct {
	heap []nodeEvent // value min-heap ordered by (at, key)
	mail [][]nodeEvent

	processed  uint64
	crossPosts uint64
	maxDepth   int
}

// nodeEvent is one station-local event. key is a caller-chosen canonical
// tie-breaker: it must be unique per (at, key) pair and must not depend on
// the worker count (the testbed derives it from per-link sequence numbers).
type nodeEvent struct {
	at   time.Time
	key  uint64
	call CallHandler
	pl   Payload
}

func (a *nodeEvent) less(b *nodeEvent) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	return a.key < b.key
}

// NewSharded creates a sharded scheduler with the given worker (= shard)
// count, starting virtual time at origin. workers < 1 is clamped to 1.
func NewSharded(origin time.Time, workers int) *ShardedScheduler {
	if workers < 1 {
		workers = 1
	}
	s := &ShardedScheduler{
		global:   NewScheduler(origin),
		shards:   make([]*shard, workers),
		now:      origin,
		floors:   make([]time.Time, workers),
		hasFloor: make([]bool, workers),
		ends:     make([]time.Time, workers),
		preLens:  make([]int, workers),
	}
	for i := range s.shards {
		s.shards[i] = &shard{mail: make([][]nodeEvent, workers)}
	}
	return s
}

// SetLookahead sets the uniform conservative window width W: the minimum
// delay between a node event executing and any node event it may post on
// another shard. Hosts without per-shard latency information set it to
// their minimum link latency before running. W <= 0 with no matrix set
// disables node windows entirely (sequential fallback). SetLatencyMatrix
// supersedes the uniform width.
func (s *ShardedScheduler) SetLookahead(w time.Duration) {
	s.lookahead = w
	if s.closure == nil || w <= 0 {
		return
	}
	// A matrix is already installed; keep it (it is never narrower).
}

// Lookahead returns the configured uniform window width.
func (s *ShardedScheduler) Lookahead() time.Duration { return s.lookahead }

// SetLatencyMatrix installs per-shard-pair lookahead: m[src][dst] is the
// minimum latency of any single event hop from a station on shard src to a
// station on shard dst (the testbed uses the minimum link delay between the
// shards' node sets). Entries must be positive or NoRoute; a zero entry —
// including a zero self-loop m[i][i] — is rejected, because it means a
// zero-delay hop leaked into the matrix builder and no finite window could
// ever be safe against it.
//
// The scheduler stores the all-pairs shortest-path closure of m with free
// intra-shard chaining (diagonal 0): an event chain from shard j to shard i
// may route through intermediate shards, and hops within a shard are
// ordered by the shard's own heap rather than by windows, so they bound no
// window. Self-loop entries therefore only validate the builder; they never
// widen or narrow a window.
func (s *ShardedScheduler) SetLatencyMatrix(m [][]time.Duration) error {
	k := len(s.shards)
	if len(m) != k {
		return fmt.Errorf("event: latency matrix is %d×?, want %d×%d", len(m), k, k)
	}
	d := make([][]time.Duration, k)
	for i := range m {
		if len(m[i]) != k {
			return fmt.Errorf("event: latency matrix row %d has %d entries, want %d", i, len(m[i]), k)
		}
		d[i] = make([]time.Duration, k)
		for j, v := range m[i] {
			switch {
			case v == NoRoute:
				d[i][j] = infDur
			case v <= 0:
				return fmt.Errorf("event: non-positive latency %v from shard %d to shard %d", v, i, j)
			default:
				d[i][j] = v
			}
		}
		d[i][i] = 0 // intra-shard chaining is ordered by the heap, not windows
	}
	// Floyd–Warshall closure: chains may cross intermediate shards, and the
	// triangle inequality C[j][i] <= C[j][k] + C[k][i] is exactly what makes
	// mailbox events safe to defer to the next barrier.
	for via := 0; via < k; via++ {
		for i := 0; i < k; i++ {
			dvia := d[i][via]
			if dvia >= infDur {
				continue
			}
			for j := 0; j < k; j++ {
				if alt := dvia + d[via][j]; alt < d[i][j] {
					d[i][j] = alt
				}
			}
		}
	}
	s.closure = d
	s.ret = returnBounds(d)
	return nil
}

// returnBounds computes, per shard, the cheapest event chain that leaves the
// shard and comes back: ret[i] = min over j≠i of C[i][j] + C[j][i]. A shard's
// own queued events bound its window through this term — an event executing
// at floor_i can hop to another shard and produce an arrival back home at
// floor_i + ret[i], and that arrival rides mailboxes invisible to the next
// barrier's floors. Chains through several shards are covered because the
// closure obeys the triangle inequality. The trivial stay-home path (C[i][i]
// = 0) is deliberately excluded: intra-shard posts land in the shard's own
// heap mid-window and execute in (at, key) order, so they need no window
// bound.
func returnBounds(d [][]time.Duration) []time.Duration {
	ret := make([]time.Duration, len(d))
	for i := range d {
		best := infDur
		for j := range d {
			if j == i || d[i][j] >= infDur || d[j][i] >= infDur {
				continue
			}
			if rt := d[i][j] + d[j][i]; rt < best {
				best = rt
			}
		}
		ret[i] = best
	}
	return ret
}

// LatencyClosure returns the installed shortest-path closure (nil when only
// a uniform lookahead is configured). Off-diagonal entries of infinite
// distance are reported as NoRoute.
func (s *ShardedScheduler) LatencyClosure() [][]time.Duration {
	if s.closure == nil {
		return nil
	}
	out := make([][]time.Duration, len(s.closure))
	for i, row := range s.closure {
		out[i] = make([]time.Duration, len(row))
		for j, v := range row {
			if v >= infDur {
				v = NoRoute
			}
			out[i][j] = v
		}
	}
	return out
}

// ensureClosure materializes the uniform-lookahead matrix when no explicit
// one was installed, so the windowed loop has a single code path.
func (s *ShardedScheduler) ensureClosure() {
	if s.closure != nil {
		return
	}
	k := len(s.shards)
	d := make([][]time.Duration, k)
	for i := range d {
		d[i] = make([]time.Duration, k)
		for j := range d[i] {
			if i != j {
				d[i][j] = s.lookahead
			}
		}
	}
	s.closure = d
	s.ret = returnBounds(d)
}

// Preallocate grows every shard's heap and mailbox backing arrays to hold
// perShard events without reallocation, so the hot PostNode path performs
// no slice growth during the run. Call before Run; growing later is only a
// performance loss, never an error.
func (s *ShardedScheduler) Preallocate(perShard int) {
	if perShard <= 0 {
		return
	}
	mailEach := perShard / len(s.shards)
	if mailEach < 16 {
		mailEach = 16
	}
	for _, sh := range s.shards {
		if cap(sh.heap) < perShard {
			grown := make([]nodeEvent, len(sh.heap), perShard)
			copy(grown, sh.heap)
			sh.heap = grown
		}
		for d, box := range sh.mail {
			if cap(box) < mailEach {
				grownBox := make([]nodeEvent, len(box), mailEach)
				copy(grownBox, box)
				sh.mail[d] = grownBox
			}
		}
	}
}

// SetBarrierHook installs fn to run single-threaded at every window barrier,
// between the shards stopping and the clock advancing to the window's minimum
// end. A PostNode issued from the hook goes straight to the destination heap
// (no window is executing) and is not clamped forward (s.now still holds the
// pre-window value), so deferring an in-window cross-shard post to the hook is
// timing-equivalent to routing it through a mailbox. Only the windowed loop
// has barriers: with one worker or no lookahead the sequential merge runs and
// the hook never fires, which is exactly right — hosts that stage work for
// the hook must do so only while InWindow reports true.
func (s *ShardedScheduler) SetBarrierHook(fn func()) { s.barrierHook = fn }

// InWindow reports whether a node window is currently executing, i.e. whether
// the caller is running inside a shard worker between a barrier's start and
// its end. Hosts use it to decide between posting an event immediately and
// staging it for the barrier hook. Like PostNode's use of the same flag, the
// read is race-free for code running on a shard: the coordinator writes the
// flag strictly before starts and after done, the worker's channel operations
// order the access.
func (s *ShardedScheduler) InWindow() bool { return s.parallel }

// Workers returns the shard count.
func (s *ShardedScheduler) Workers() int { return len(s.shards) }

// Now returns the current virtual time.
func (s *ShardedScheduler) Now() time.Time {
	if g := s.global.Now(); g.After(s.now) {
		return g
	}
	return s.now
}

// Pending returns the number of queued events across the global queue, the
// shard heaps and the cross-shard mailboxes. Mailbox-resident events count:
// between a window's posts and the barrier drain they are scheduled work
// exactly like heap entries, merely staged on the posting shard.
func (s *ShardedScheduler) Pending() int {
	n := s.global.Pending()
	for _, sh := range s.shards {
		n += len(sh.heap)
		for _, box := range sh.mail {
			n += len(box)
		}
	}
	return n
}

// Processed returns the number of events executed so far.
func (s *ShardedScheduler) Processed() uint64 {
	return s.global.Processed() + s.nodeProcessed
}

// Windows returns the number of node windows executed.
func (s *ShardedScheduler) Windows() uint64 { return s.windows }

// WindowStalls returns the number of windows in which at least one shard
// executed no work — the load-imbalance gauge.
func (s *ShardedScheduler) WindowStalls() uint64 { return s.windowStalls }

// CrossShardPosts returns the total number of node events routed through
// mailboxes (posted by one shard for another during a window).
func (s *ShardedScheduler) CrossShardPosts() uint64 {
	var n uint64
	for _, sh := range s.shards {
		n += sh.crossPosts
	}
	return n
}

// QueueHighWater returns the deepest queue shard i reached: the maximum,
// over time, of its heap depth plus the events resident in other shards'
// mailboxes for it. The mailbox term is measured at each barrier as
// (heap length at window start + inbound mail at the barrier), so events
// that were executed and replaced by cross-shard arrivals within one window
// still register as pressure — the bare heap high-water undercounted them
// and made the profiler's queue gauges misleading mid-window.
func (s *ShardedScheduler) QueueHighWater(i int) int { return s.shards[i].maxDepth }

// At schedules a global event. Global events run single-threaded between
// node windows; they must only be scheduled before Run or from other global
// events, never from node events executing inside a window.
func (s *ShardedScheduler) At(at time.Time, fn Handler) { s.global.At(at, fn) }

// AtCall schedules a global pre-bound event (see Scheduler.AtCall).
func (s *ShardedScheduler) AtCall(at time.Time, fn CallHandler, pl Payload) {
	s.global.AtCall(at, fn, pl)
}

// After schedules a global event after a delay from the current time.
func (s *ShardedScheduler) After(d time.Duration, fn Handler) { s.At(s.Now().Add(d), fn) }

// PostNode schedules a node event on shard dst with canonical tie-break key.
// src is the posting shard (the shard whose event is executing); use src ==
// dst or any value outside a window. During a window a cross-shard post is
// staged in the src shard's mailbox and becomes visible at the next barrier —
// the lookahead invariant guarantees it cannot be due before then.
//
//gcopss:hotpath
func (s *ShardedScheduler) PostNode(src, dst int, at time.Time, key uint64, call CallHandler, pl Payload) {
	ev := nodeEvent{at: at, key: key, call: call, pl: pl}
	if s.parallel {
		if src != dst {
			sh := s.shards[src]
			sh.mail[dst] = append(sh.mail[dst], ev)
			sh.crossPosts++
			return
		}
		// Same-shard posts during a window skip the global-clock clamp:
		// s.now is barrier state and the executing event's own time is the
		// only valid floor (the heap keeps order).
		s.shards[dst].push(ev)
		return
	}
	if ev.at.Before(s.now) {
		ev.at = s.now
	}
	s.shards[dst].push(ev)
}

// push inserts one event into the shard's manual value heap. Part of the
// scheduler inner loop: no closures (sort or heap interfaces would allocate),
// no boxing.
//
//gcopss:hotpath
func (sh *shard) push(ev nodeEvent) {
	sh.heap = append(sh.heap, ev)
	if len(sh.heap) > sh.maxDepth {
		sh.maxDepth = len(sh.heap)
	}
	h := sh.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes the earliest event. Same inner-loop discipline as push.
//
//gcopss:hotpath
func (sh *shard) pop() nodeEvent {
	h := sh.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[last] = nodeEvent{}
	sh.heap = h[:last]
	h = sh.heap
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h) && h[l].less(&h[smallest]) {
			smallest = l
		}
		if r < len(h) && h[r].less(&h[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}

// runShard executes shard i's events with at < end, in (at, key) order.
// Events the shard posts to itself inside the window are picked up by the
// same loop; cross-shard posts go to mailboxes.
//
//gcopss:hotpath
func (s *ShardedScheduler) runShard(i int, end time.Time) int {
	sh := s.shards[i]
	n := 0
	for len(sh.heap) > 0 && sh.heap[0].at.Before(end) {
		ev := sh.pop()
		ev.call(ev.at, ev.pl)
		n++
	}
	sh.processed += uint64(n)
	return n
}

// drainMail moves every staged cross-shard event into its destination heap
// and folds mailbox residency into the destinations' queue high-water marks.
// Called at barriers only (single-threaded).
func (s *ShardedScheduler) drainMail() {
	p := s.prof
	for si, sh := range s.shards {
		for d, box := range sh.mail {
			if len(box) == 0 {
				continue
			}
			if p != nil {
				p.noteMailDepth(si, len(box))
			}
			s.preLens[d] += len(box)
			for _, ev := range box {
				s.shards[d].push(ev)
			}
			sh.mail[d] = box[:0]
		}
	}
	for d, depth := range s.preLens {
		if depth > s.shards[d].maxDepth {
			s.shards[d].maxDepth = depth
		}
		s.preLens[d] = 0
	}
}

// computeFloors records every shard's earliest queued event and returns the
// global minimum. Mailboxes are empty whenever this runs (post-barrier).
func (s *ShardedScheduler) computeFloors() (time.Time, bool) {
	var best time.Time
	ok := false
	for i, sh := range s.shards {
		if len(sh.heap) == 0 {
			s.hasFloor[i] = false
			continue
		}
		s.hasFloor[i] = true
		s.floors[i] = sh.heap[0].at
		if !ok || sh.heap[0].at.Before(best) {
			best = sh.heap[0].at
			ok = true
		}
	}
	return best, ok
}

// computeEnds fills s.ends with each working shard's adaptive window end:
// the earliest instant any event still queued on another shard could cause
// an arrival here, capped by the next global event and the deadline. Shards
// without work get their floor-relative cap too so the dispatch loop can
// hand every worker a bound. Returns the latest end (the furthest any shard
// may run ahead), for the width metric.
func (s *ShardedScheduler) computeEnds(tg time.Time, okg bool, deadline time.Time) time.Time {
	dl := deadline.Add(time.Nanosecond)
	var widest time.Time
	for i := range s.shards {
		end := dl
		if okg && tg.Before(end) {
			end = tg
		}
		row := s.closure
		for j := range s.shards {
			if j == i || !s.hasFloor[j] {
				continue
			}
			c := row[j][i]
			if c >= infDur {
				continue
			}
			if t := s.floors[j].Add(c); t.Before(end) {
				end = t
			}
		}
		// The shard's own queue bounds it too: an event at floor_i can leave
		// the shard and return at floor_i + ret[i], still invisible at the
		// next barrier (mailboxes hold it for one window per inter-shard hop).
		if s.hasFloor[i] && s.ret[i] < infDur {
			if t := s.floors[i].Add(s.ret[i]); t.Before(end) {
				end = t
			}
		}
		s.ends[i] = end
		if s.hasFloor[i] && end.After(widest) {
			widest = end
		}
	}
	return widest
}

// minNodeShard returns the shard holding the globally earliest (at, key)
// node event, for the sequential fallback.
func (s *ShardedScheduler) minNodeShard() (int, bool) {
	best := -1
	for i, sh := range s.shards {
		if len(sh.heap) == 0 {
			continue
		}
		if best < 0 || sh.heap[0].less(&s.shards[best].heap[0]) {
			best = i
		}
	}
	return best, best >= 0
}

// RunUntil executes events with time ≤ deadline; later events stay queued.
// It returns the number executed.
//
// A single shard takes the sequential merge even when a lookahead is set:
// window bookkeeping buys nothing without parallelism, and both loops
// execute the same canonical (time, global-first, key) order — the
// determinism suite compares one against the other directly.
func (s *ShardedScheduler) RunUntil(deadline time.Time) uint64 {
	var t0 time.Time
	if s.prof != nil {
		t0 = time.Now()
	}
	var n uint64
	if len(s.shards) == 1 || (s.closure == nil && s.lookahead <= 0) {
		n = s.runSequential(deadline)
	} else {
		s.ensureClosure()
		n = s.runWindowed(deadline)
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	if s.prof != nil {
		s.prof.wallNs += int64(time.Since(t0))
	}
	return n
}

// runWindowed is the conservative parallel loop; only entered with at least
// two shards (a single shard takes the sequential merge). Workers are
// spawned per call and torn down on return.
func (s *ShardedScheduler) runWindowed(deadline time.Time) uint64 {
	var (
		n      uint64
		starts []chan time.Time
		done   chan int
		wg     sync.WaitGroup
	)
	nw := len(s.shards)
	starts = make([]chan time.Time, nw)
	done = make(chan int, nw)
	for i := range starts {
		starts[i] = make(chan time.Time)
		wg.Add(1)
		go func(i int, c chan time.Time) {
			defer wg.Done()
			// prof is fixed before RunUntil; the coordinator reads
			// curExec/curEvents only after receiving this shard's done
			// value, so the channel is the happens-before edge.
			p := s.prof
			for end := range c {
				if p != nil {
					t0 := time.Now()
					k := s.runShard(i, end)
					p.curExec[i] = int64(time.Since(t0))
					p.curEvents[i] = k
					done <- k
				} else {
					done <- s.runShard(i, end)
				}
			}
		}(i, starts[i])
	}
	defer func() {
		for _, c := range starts {
			close(c)
		}
		wg.Wait()
	}()
	for {
		tg, okg := s.global.NextAt()
		tn, okn := s.computeFloors()
		// Global events run first at ties, single-threaded.
		if okg && (!okn || !tg.After(tn)) {
			if tg.After(deadline) {
				return n
			}
			if p := s.prof; p != nil {
				t0 := time.Now()
				n += s.global.RunUntil(tg)
				p.globalNs += int64(time.Since(t0))
			} else {
				n += s.global.RunUntil(tg)
			}
			if g := s.global.Now(); g.After(s.now) {
				s.now = g
			}
			continue
		}
		if !okn || tn.After(deadline) {
			return n
		}
		// The per-shard end computation is part of the window's cost; start
		// the window clock before it so the profiler attributes it.
		p := s.prof
		var wStart time.Time
		if p != nil {
			wStart = time.Now()
		}
		widest := s.computeEnds(tg, okg, deadline)
		s.windows++
		stalled := false
		minEnd := time.Time{}
		for i, sh := range s.shards {
			s.preLens[i] = len(sh.heap)
			if s.hasFloor[i] && (minEnd.IsZero() || s.ends[i].Before(minEnd)) {
				minEnd = s.ends[i]
			}
		}
		s.parallel = true
		for i, c := range starts {
			c <- s.ends[i]
		}
		for i := 0; i < nw; i++ {
			k := <-done
			if k == 0 {
				stalled = true
			}
			s.nodeProcessed += uint64(k)
			n += uint64(k)
		}
		s.parallel = false
		// The barrier hook runs before the mailbox drain and before s.now
		// advances to minEnd: its PostNode calls land unclamped in the
		// destination heaps, merged by (at, key) with the drained mail —
		// indistinguishable from having ridden a mailbox themselves.
		if s.barrierHook != nil {
			s.barrierHook()
		}
		if p != nil {
			p.recordWindow(s.windows-1, int64(time.Since(wStart)), tn, widest, s.ends)
			t0 := time.Now()
			s.drainMail()
			p.drainNs += int64(time.Since(t0))
		} else {
			s.drainMail()
		}
		if stalled {
			s.windowStalls++
		}
		// The global clock advances to the narrowest window end: everything
		// strictly before it has executed; wider shards merely ran ahead.
		if minEnd.After(s.now) {
			s.now = minEnd
		}
		if s.now.After(deadline) {
			s.now = deadline
		}
	}
}

// runSequential merges the global queue and every shard heap into one
// strictly ordered execution — the no-window fallback. Global events win
// timestamp ties, matching the windowed loop.
func (s *ShardedScheduler) runSequential(deadline time.Time) uint64 {
	var n uint64
	for {
		tg, okg := s.global.NextAt()
		i, okn := s.minNodeShard()
		if okg && (!okn || !tg.After(s.shards[i].heap[0].at)) {
			if tg.After(deadline) {
				return n
			}
			if p := s.prof; p != nil {
				t0 := time.Now()
				n += s.global.RunUntil(tg)
				p.globalNs += int64(time.Since(t0))
			} else {
				n += s.global.RunUntil(tg)
			}
			if g := s.global.Now(); g.After(s.now) {
				s.now = g
			}
			continue
		}
		if !okn {
			return n
		}
		sh := s.shards[i]
		if sh.heap[0].at.After(deadline) {
			return n
		}
		ev := sh.pop()
		sh.processed++
		s.nodeProcessed++
		if ev.at.After(s.now) {
			s.now = ev.at
		}
		// With no windows there is no barrier, so every node event is pure
		// execution; charge it to its shard and to the window bucket so
		// AttributedFrac keeps the same meaning in both modes.
		if p := s.prof; p != nil {
			t0 := time.Now()
			ev.call(ev.at, ev.pl)
			d := int64(time.Since(t0))
			p.shards[i].ExecNs += d
			p.shards[i].Events++
			p.windowNs += d
		} else {
			ev.call(ev.at, ev.pl)
		}
		n++
	}
}
