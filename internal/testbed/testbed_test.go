package testbed

import (
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/wire"
)

func TestNodeFIFOQueueing(t *testing.T) {
	tb := New()
	var handled []time.Time
	tb.AddNode("n", func(now time.Time, _ ndn.FaceID, _ *wire.Packet, _ ndn.ActionSink) {
		handled = append(handled, now)
	}, func(*wire.Packet) time.Duration { return 10 * time.Millisecond }, 0)

	pkt := &wire.Packet{Type: wire.TypeInterest, Name: "/x"}
	t0 := tb.Now()
	// Three packets arrive back to back; service is 10ms each.
	tb.Inject(t0.Add(1*time.Millisecond), "n", 0, pkt)
	tb.Inject(t0.Add(2*time.Millisecond), "n", 0, pkt)
	tb.Inject(t0.Add(3*time.Millisecond), "n", 0, pkt)
	if err := tb.Run(t0.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	if len(handled) != 3 {
		t.Fatalf("handled %d packets", len(handled))
	}
	// Service starts: 1ms, 11ms, 21ms.
	wantStarts := []time.Duration{1 * time.Millisecond, 11 * time.Millisecond, 21 * time.Millisecond}
	for i, w := range wantStarts {
		if got := handled[i].Sub(t0); got != w {
			t.Errorf("packet %d served at %v, want %v", i, got, w)
		}
	}
	// The third packet arrives at 3ms while the node is busy until 21ms.
	_, maxQ, ok := tb.NodeStats("n")
	if !ok || maxQ != 18*time.Millisecond {
		t.Errorf("maxQueue = %v, want 18ms", maxQ)
	}
	if processed, _, _ := tb.NodeStats("n"); processed != 3 {
		t.Errorf("processed = %d", processed)
	}
	if _, _, ok := tb.NodeStats("ghost"); ok {
		t.Error("stats for unknown node")
	}
}

func TestLinkDelayAndPerCopy(t *testing.T) {
	tb := New()
	var received []time.Time
	// a fans out two copies to b and c; per-copy surcharge 5ms.
	tb.AddNode("a", func(now time.Time, _ ndn.FaceID, pkt *wire.Packet, out ndn.ActionSink) {
		out.Emit(ndn.Action{Face: 1, Packet: pkt.Clone()})
		out.Emit(ndn.Action{Face: 2, Packet: pkt.Clone()})
	}, func(*wire.Packet) time.Duration { return 10 * time.Millisecond }, 5*time.Millisecond)
	sink := func(now time.Time, _ ndn.FaceID, _ *wire.Packet, _ ndn.ActionSink) {
		received = append(received, now)
	}
	tb.AddNode("b", sink, func(*wire.Packet) time.Duration { return 0 }, 0)
	tb.AddNode("c", sink, func(*wire.Packet) time.Duration { return 0 }, 0)
	if err := tb.Connect("a", 1, "b", 0, 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := tb.Connect("a", 2, "c", 0, 3*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	t0 := tb.Now()
	tb.Inject(t0, "a", 0, &wire.Packet{Type: wire.TypeInterest, Name: "/x"})
	if err := tb.Run(t0.Add(time.Second), 0); err != nil {
		t.Fatal(err)
	}
	// Service = 10ms base + 1 extra copy × 5ms = 15ms; +3ms link = 18ms.
	if len(received) != 2 {
		t.Fatalf("received %d", len(received))
	}
	for _, at := range received {
		if got := at.Sub(t0); got != 18*time.Millisecond {
			t.Errorf("arrival at %v, want 18ms", got)
		}
	}
	if events, bytes := tb.Stats(); events != 3 || bytes <= 0 {
		t.Errorf("stats = %d events %f bytes", events, bytes)
	}
}

func TestConnectValidation(t *testing.T) {
	tb := New()
	tb.AddNode("a", nil, func(*wire.Packet) time.Duration { return 0 }, 0)
	tb.AddNode("b", nil, func(*wire.Packet) time.Duration { return 0 }, 0)
	if err := tb.Connect("a", 1, "zzz", 1, 0); err == nil {
		t.Error("unknown node accepted")
	}
	if err := tb.Connect("a", 1, "b", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := tb.Connect("a", 1, "b", 2, 0); err == nil {
		t.Error("double-wired face accepted")
	}
}

func TestBatchCodec(t *testing.T) {
	in := []batchRecord{{sentAt: 123, size: 10}, {sentAt: 456, size: 0}, {sentAt: 789, size: 300}}
	out := decodeBatch(encodeBatch(in))
	if len(out) != 3 {
		t.Fatalf("decoded %d records", len(out))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("record %d = %+v, want %+v", i, out[i], in[i])
		}
	}
	if got := decodeBatch([]byte{1, 2, 3}); got != nil {
		t.Errorf("garbage decoded: %v", got)
	}
	// Truncated payload stops cleanly.
	enc := encodeBatch(in)
	if got := decodeBatch(enc[:15]); len(got) != 0 {
		t.Errorf("truncated batch yielded %v", got)
	}
}

// scaled setup shared by the three system tests.
func microSetup(t *testing.T) *Setup {
	t.Helper()
	s, err := ScaledSetup(45*time.Second, 99)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunGCOPSSMicro(t *testing.T) {
	s := microSetup(t)
	res, err := RunGCOPSS(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 || res.Deliveries == 0 {
		t.Fatalf("published=%d deliveries=%d", res.Published, res.Deliveries)
	}
	// Every update reaches its visible peers: with 62 players 2-per-area the
	// average fan-out is several receivers per update.
	if ratio := float64(res.Deliveries) / float64(res.Published); ratio < 3 {
		t.Errorf("delivery fan-out = %.1f, suspiciously low", ratio)
	}
	// Uncongested: mean latency in single-digit milliseconds (the paper
	// measures 8.51 ms), and no multi-second stragglers.
	mean := res.Latency.Mean()
	if mean < 3 || mean > 20 {
		t.Errorf("G-COPSS mean latency = %.2f ms, want ≈8.5", mean)
	}
	if res.Latency.Max() > 100 {
		t.Errorf("G-COPSS max latency = %.2f ms", res.Latency.Max())
	}
}

func TestRunIPServerMicro(t *testing.T) {
	s := microSetup(t)
	res, err := RunIPServer(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 || res.Deliveries == 0 {
		t.Fatalf("published=%d deliveries=%d", res.Published, res.Deliveries)
	}
	mean := res.Latency.Mean()
	if mean < 12 || mean > 60 {
		t.Errorf("IP server mean latency = %.2f ms, want ≈25", mean)
	}
	// "about 8% of players experience an update latency over 55ms": a
	// visible tail above 55 ms, but not the majority.
	frac := res.Latency.FractionAbove(55)
	if frac == 0 || frac > 0.5 {
		t.Errorf("fraction above 55ms = %.3f", frac)
	}
}

func TestRunNDNMicro(t *testing.T) {
	s := microSetup(t)
	res, err := RunNDN(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Published == 0 {
		t.Fatal("nothing published")
	}
	if res.Deliveries == 0 {
		t.Fatal("nothing delivered")
	}
	// The interest storm must congest the 3.3 ms routers: latencies reach
	// seconds (the paper reports a 12 s average over the full run).
	if mean := res.Latency.Mean(); mean < 500 {
		t.Errorf("NDN mean latency = %.2f ms, want severe congestion (seconds)", mean)
	}
}

func TestFig4Ordering(t *testing.T) {
	// The headline microbenchmark result: G-COPSS < IP server ≪ NDN.
	s := microSetup(t)
	gc, err := RunGCOPSS(s)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := RunIPServer(s)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := RunNDN(s)
	if err != nil {
		t.Fatal(err)
	}
	if !(gc.Latency.Mean() < ip.Latency.Mean() && ip.Latency.Mean() < nd.Latency.Mean()) {
		t.Errorf("ordering violated: gcopss=%.2f ip=%.2f ndn=%.2f",
			gc.Latency.Mean(), ip.Latency.Mean(), nd.Latency.Mean())
	}
	if nd.Latency.Mean() < 10*ip.Latency.Mean() {
		t.Errorf("NDN should be an order of magnitude worse: ip=%.2f ndn=%.2f",
			ip.Latency.Mean(), nd.Latency.Mean())
	}
}
