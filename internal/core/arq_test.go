package core

import (
	"testing"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/copss"
	"github.com/icn-gaming/gcopss/internal/flowctl"
	"github.com/icn-gaming/gcopss/internal/ndn"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// tickActions drives the sink-based retransmission timer and collects the
// resends, for tests that assert on them as a slice.
func tickActions(r *Router, now time.Time) []ndn.Action {
	var sink ndn.SliceSink
	r.TickTo(now, &sink)
	return sink.Actions
}

// arqPair builds two directly linked routers with R1 hosting /rp1.
func arqPair(t *testing.T, opts ...Option) *harness {
	t.Helper()
	h := newHarness(t)
	h.addRouter("R1", opts...)
	h.addRouter("R2", opts...)
	h.connect("R1", 1, "R2", 1)
	actions, err := h.routers["R1"].BecomeRPAt(time.Unix(0, 0), copss.RPInfo{
		Name:     "/rp1",
		Prefixes: []cd.CD{cd.MustParse("/1")},
		Seq:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.enqueueActions("R1", actions)
	return h
}

func TestARQAckClearsPending(t *testing.T) {
	h := arqPair(t)
	r1 := h.routers["R1"]
	if got := r1.ARQPending(); got != 1 {
		t.Fatalf("after BecomeRPAt: pending = %d, want 1 (the announcement)", got)
	}
	h.run() // deliver the announcement; R2 acks; the ack clears the entry
	if got := r1.ARQPending(); got != 0 {
		t.Fatalf("after ack: pending = %d, want 0", got)
	}
	if r1.Stats().AcksIn != 1 {
		t.Fatalf("AcksIn = %d, want 1", r1.Stats().AcksIn)
	}
}

func TestARQRetransmitWithBackoffUntilAck(t *testing.T) {
	h := arqPair(t)
	r1 := h.routers["R1"]
	h.queue = nil // the announcement is "lost": never delivered to R2

	t0 := time.Unix(0, 0)
	// Before the RTO expires nothing is resent.
	if out := tickActions(r1, t0.Add(DefaultARQRTO / 2)); len(out) != 0 {
		t.Fatalf("premature retransmission: %v", out)
	}
	// After the RTO the packet is resent; backoff doubles each attempt.
	out := tickActions(r1, t0.Add(DefaultARQRTO + time.Millisecond))
	if len(out) != 1 || out[0].Packet.Type != wire.TypeFIBAdd {
		t.Fatalf("first retransmission = %v, want the FIBAdd", out)
	}
	if r1.Stats().Retransmissions != 1 {
		t.Fatalf("Retransmissions = %d, want 1", r1.Stats().Retransmissions)
	}
	// Immediately after, the doubled backoff suppresses another resend.
	if out := tickActions(r1, t0.Add(DefaultARQRTO + 2*time.Millisecond)); len(out) != 0 {
		t.Fatalf("backoff not applied: %v", out)
	}
	// Deliver the retransmission; the ack must clear the pending entry.
	h.enqueueActions("R1", out)
	h.enqueueActions("R1", tickActions(r1, t0.Add(time.Hour))) // expired again: resend
	h.run()
	if got := r1.ARQPending(); got != 0 {
		t.Fatalf("pending after acked retransmission = %d, want 0", got)
	}
}

func TestARQGivesUpAfterMaxAttempts(t *testing.T) {
	h := arqPair(t, WithFlowControl(
		flowctl.WithInitialRTO(10*time.Millisecond),
		flowctl.WithMaxAttempts(3),
	))
	r1 := h.routers["R1"]
	h.queue = nil // lose the announcement forever

	now := time.Unix(0, 0)
	resent := 0
	for i := 0; i < 10; i++ {
		now = now.Add(time.Hour) // always past any backoff
		resent += len(tickActions(r1, now))
	}
	if resent != 3 {
		t.Fatalf("resent %d times, want 3 (maxAttempts)", resent)
	}
	if got := r1.ARQPending(); got != 0 {
		t.Fatalf("pending after give-up = %d, want 0", got)
	}
	if r1.Stats().RetransAbandoned != 1 {
		t.Fatalf("RetransAbandoned = %d, want 1", r1.Stats().RetransAbandoned)
	}
}

func TestARQAckFeedsEstimator(t *testing.T) {
	h := arqPair(t)
	r1 := h.routers["R1"]
	if got := r1.ARQSRTT(1); got != 0 {
		t.Fatalf("SRTT before any ack = %v, want 0", got)
	}
	h.run() // announcement delivered and acked: one RTT sample
	if got := r1.ARQSRTT(1); got <= 0 {
		t.Fatalf("SRTT after ack = %v, want > 0 (ack must feed the estimator)", got)
	}
	if got := r1.Obs().Histogram("arq_srtt_ms", nil).Count(); got != 1 {
		t.Fatalf("arq_srtt_ms observations = %d, want 1", got)
	}
}

func TestARQKarnNoSampleFromRetransmission(t *testing.T) {
	h := arqPair(t)
	r1 := h.routers["R1"]
	h.queue = nil // first transmission lost
	out := tickActions(r1, time.Unix(0, 0).Add(time.Hour))
	if len(out) != 1 {
		t.Fatalf("expected one retransmission, got %v", out)
	}
	h.enqueueActions("R1", out)
	h.run() // the retransmission is delivered and acked
	if r1.ARQPending() != 0 {
		t.Fatal("ack must clear the retransmitted entry")
	}
	// Karn's algorithm: the ack matched a retransmitted packet, so its
	// round trip is ambiguous and must not be sampled.
	if got := r1.ARQSRTT(1); got != 0 {
		t.Fatalf("retransmitted ack was RTT-sampled: SRTT = %v", got)
	}
}

func TestARQAdaptiveBackoffClampedToMaxRTO(t *testing.T) {
	h := arqPair(t, WithFlowControl(
		flowctl.WithInitialRTO(10*time.Millisecond),
		flowctl.WithRTOBounds(time.Millisecond, 40*time.Millisecond),
		flowctl.WithMaxAttempts(8),
	))
	r1 := h.routers["R1"]
	h.queue = nil // lose everything: the sender must keep probing
	now := time.Unix(0, 0).Add(11 * time.Millisecond)
	resent := 0
	for i := 0; i < 20; i++ {
		resent += len(tickActions(r1, now))
		now = now.Add(41 * time.Millisecond) // always past the MaxRTO clamp
	}
	// Unlike the legacy unclamped doubling (which would need hours of
	// virtual time for 8 attempts), the clamp keeps every retry within one
	// MaxRTO of the previous.
	if resent != 8 {
		t.Fatalf("resent %d times at MaxRTO cadence, want all 8 attempts", resent)
	}
	if r1.Stats().RetransAbandoned != 1 {
		t.Fatalf("RetransAbandoned = %d, want 1 after the budget", r1.Stats().RetransAbandoned)
	}
}

func TestARQStaticModeKeepsLegacySchedule(t *testing.T) {
	h := arqPair(t, WithFlowControl(flowctl.Static()))
	r1 := h.routers["R1"]
	h.queue = nil
	t0 := time.Unix(0, 0)
	// Static mode keeps the legacy defaults: 50ms base, 6 attempts,
	// unclamped doubling — resend at 50ms, then not before 50ms<<1 later.
	if out := tickActions(r1, t0.Add(DefaultARQRTO+time.Millisecond)); len(out) != 1 {
		t.Fatalf("first static retransmission: %v", out)
	}
	if out := tickActions(r1, t0.Add(DefaultARQRTO+2*DefaultARQRTO)); len(out) != 0 {
		t.Fatalf("static backoff (rto<<1) not applied: %v", out)
	}
	resent := 1
	now := t0
	for i := 0; i < 10; i++ {
		now = now.Add(time.Hour)
		resent += len(tickActions(r1, now))
	}
	if resent != DefaultARQMaxAttempts {
		t.Fatalf("static resends = %d, want legacy budget %d", resent, DefaultARQMaxAttempts)
	}
}

func TestARQDuplicateSuppressedButAcked(t *testing.T) {
	h := arqPair(t)
	h.run()
	r2 := h.routers["R2"]
	join := &wire.Packet{
		Type: wire.TypeJoin, Name: "/rp1", Origin: "R9",
		CDs: []cd.CD{cd.MustParse("/1/2")}, CtlSeq: 77,
	}
	first := r2.HandlePacket(time.Unix(0, 0), 1, join)
	second := r2.HandlePacket(time.Unix(0, 0), 1, join.Clone())
	if r2.Stats().JoinsIn != 1 {
		t.Fatalf("JoinsIn = %d, want 1 (duplicate must not reprocess)", r2.Stats().JoinsIn)
	}
	if r2.Stats().CtlDupsIn != 1 {
		t.Fatalf("CtlDupsIn = %d, want 1", r2.Stats().CtlDupsIn)
	}
	// Both deliveries ack (the first ack may have been lost upstream).
	for i, actions := range [][]ndn.Action{first, second} {
		acked := false
		for _, a := range actions {
			if a.Face == 1 && a.Packet.Type == wire.TypeAck && a.Packet.CtlSeq == 77 {
				acked = true
			}
		}
		if !acked {
			t.Fatalf("delivery %d did not ack: %v", i, actions)
		}
	}
}

func TestARQLegacyZeroCtlSeqNeverAcked(t *testing.T) {
	h := arqPair(t)
	h.run()
	r2 := h.routers["R2"]
	join := &wire.Packet{Type: wire.TypeJoin, Name: "/rp1", CDs: []cd.CD{cd.MustParse("/1/2")}}
	for _, a := range r2.HandlePacket(time.Unix(0, 0), 1, join) {
		if a.Packet.Type == wire.TypeAck {
			t.Fatalf("legacy packet (CtlSeq=0) must not be acked: %v", a)
		}
	}
	// And reprocessing is NOT suppressed for legacy packets.
	r2.HandlePacket(time.Unix(0, 0), 1, join.Clone())
	if r2.Stats().JoinsIn != 2 {
		t.Fatalf("JoinsIn = %d, want 2", r2.Stats().JoinsIn)
	}
}

func TestARQRemoveFaceDropsState(t *testing.T) {
	h := arqPair(t)
	r1 := h.routers["R1"]
	h.queue = nil
	if r1.ARQPending() != 1 {
		t.Fatal("expected one pending entry")
	}
	r1.RemoveFace(1)
	if r1.ARQPending() != 0 {
		t.Fatal("RemoveFace must clear pending entries for the face")
	}
	if out := tickActions(r1, time.Unix(0, 0).Add(time.Hour)); len(out) != 0 {
		t.Fatalf("no retransmissions expected after face removal: %v", out)
	}
}

func TestARQStampsOnlyRouterFaces(t *testing.T) {
	h := newHarness(t)
	h.addRouter("R1")
	h.addRouter("R2")
	h.connect("R1", 1, "R2", 1)
	h.attach("c", "R1", 10)
	r1 := h.routers["R1"]
	actions, err := r1.BecomeRPAt(time.Unix(0, 0), copss.RPInfo{
		Name: "/rp1", Prefixes: []cd.CD{cd.MustParse("/1")}, Seq: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range actions {
		if a.Face == 10 {
			t.Fatalf("announcement flooded to a client face: %v", a)
		}
		if a.Face == 1 && a.Packet.CtlSeq == 0 {
			t.Fatalf("router-face announcement not stamped: %v", a.Packet)
		}
	}
}
