package obs

import (
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("packets_in")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := reg.Counter("packets_in"); again != c {
		t.Error("Counter is not idempotent per name")
	}

	g := reg.Gauge("queue_depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestRegistryRejectsBadNamesAndKindConflicts(t *testing.T) {
	reg := NewRegistry()
	for _, bad := range []string{"", "1abc", "Upper", "with-dash", "with space", "_lead"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			reg.Counter(bad)
		}()
	}
	reg.Counter("dual")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict: expected panic")
			}
		}()
		reg.Gauge("dual")
	}()
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"multicast_in":    true,
		"ndn.pit_entries": true,
		"a":               true,
		"a9._":            true,
		"":                false,
		"9a":              false,
		"A":               false,
		"a-b":             false,
		"\u00e9tat":       false,
	} {
		if got := ValidName(name); got != want {
			t.Errorf("ValidName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ms", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-106) > 1e-9 {
		t.Errorf("sum = %g, want 106", got)
	}
	want := []uint64{2, 1, 1, 1} // ≤1: {0.5,1}, ≤2: {1.5}, ≤4: {3}, +Inf: {100}
	got := h.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("snapshot = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHistogramObserveNMatchesObserve(t *testing.T) {
	vals := []float64{0.5, 1, 1.5, 3, 3, 3, 100}
	one := NewHistogram([]float64{1, 2, 4})
	for _, v := range vals {
		one.Observe(v)
	}
	batch := NewHistogram([]float64{1, 2, 4})
	batch.ObserveN(0.5, 1)
	batch.ObserveN(1, 1)
	batch.ObserveN(1.5, 1)
	batch.ObserveN(3, 3)
	batch.ObserveN(100, 1)
	batch.ObserveN(42, 0) // no-op

	if g, w := batch.Count(), one.Count(); g != w {
		t.Errorf("count = %d, want %d", g, w)
	}
	if g, w := batch.Sum(), one.Sum(); math.Abs(g-w) > 1e-9 {
		t.Errorf("sum = %g, want %g", g, w)
	}
	gs, ws := batch.Snapshot(), one.Snapshot()
	for i := range ws {
		if gs[i] != ws[i] {
			t.Errorf("bucket %d = %d, want %d", i, gs[i], ws[i])
		}
	}
	for _, q := range []float64{0.5, 0.99} {
		if g, w := batch.Quantile(q), one.Quantile(q); math.Abs(g-w) > 1e-9 {
			t.Errorf("quantile %g = %g, want %g", q, g, w)
		}
	}
}

func TestLatencyBucketsAreLogSpaced(t *testing.T) {
	b := LatencyBucketsMs()
	if len(b) != 20 {
		t.Fatalf("len = %d, want 20", len(b))
	}
	if b[0] != 0.05 {
		t.Errorf("first bound = %g, want 0.05", b[0])
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]/b[i-1]-2) > 1e-12 {
			t.Errorf("bounds %d..%d not doubling: %g %g", i-1, i, b[i-1], b[i])
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{1, 10, 100})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
}

func TestFlightRingAndDump(t *testing.T) {
	f := NewFlight(4)
	if !f.Enabled() {
		t.Fatal("recorder should be enabled")
	}
	for i := 0; i < 6; i++ {
		f.Record(Event{At: int64(i), Kind: EvMulticast, Face: int64(i), CD: "/1/2", Origin: "p1"})
	}
	events := f.Snapshot()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	if events[0].Seq != 2 || events[3].Seq != 5 {
		t.Errorf("retained seqs %d..%d, want 2..5", events[0].Seq, events[3].Seq)
	}
	if got := f.Recorded(); got != 6 {
		t.Errorf("recorded = %d, want 6", got)
	}
	if last := f.Last(2); len(last) != 2 || last[1].Seq != 5 {
		t.Errorf("Last(2) = %+v", last)
	}

	var sb strings.Builder
	if err := f.Dump(&sb, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"multicast", "cd=/1/2", "origin=p1", "#5 "} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestFlightDisabledAndNil(t *testing.T) {
	var nilF *Flight
	nilF.Record(Event{Kind: EvDrop}) // must not panic
	if nilF.Enabled() || nilF.Snapshot() != nil || nilF.Recorded() != 0 || nilF.Cap() != 0 {
		t.Error("nil recorder should be inert")
	}
	off := NewFlight(0)
	off.Record(Event{Kind: EvDrop})
	if off.Enabled() || len(off.Snapshot()) != 0 {
		t.Error("zero-capacity recorder should be inert")
	}
}

func TestWriteTextExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("multicast_in").Add(3)
	reg.Gauge("st_entries").Set(12)
	reg.GaugeFunc("rp_table_entries", func() float64 { return 2 })
	h := reg.Histogram("delivery_latency_ms", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	qv := reg.GaugeVec("rp_queue_depth", "rp")
	qv.With("rp1").Set(9)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE multicast_in counter\nmulticast_in 3\n",
		"# TYPE st_entries gauge\nst_entries 12\n",
		"rp_table_entries 2\n",
		"# TYPE delivery_latency_ms histogram",
		`delivery_latency_ms_bucket{le="1"} 1`,
		`delivery_latency_ms_bucket{le="10"} 2`,
		`delivery_latency_ms_bucket{le="+Inf"} 3`,
		"delivery_latency_ms_sum 55.5",
		"delivery_latency_ms_count 3",
		`rp_queue_depth{rp="rp1"} 9`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDebugMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Inc()
	fl := NewFlight(8)
	fl.Record(Event{Kind: EvMulticast, CD: "/1"})
	mux := NewDebugMux(
		func(w io.Writer) { reg.WriteText(w) },     //nolint:errcheck // test shim
		func(w io.Writer, n int) { fl.Dump(w, n) }, //nolint:errcheck // test shim
		func(w io.Writer) { io.WriteString(w, `{"traceEvents":[]}`) }, //nolint:errcheck // test shim
	)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close() //nolint:errcheck // test shim
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "hits 1") {
		t.Errorf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/flight?n=1"); code != http.StatusOK || !strings.Contains(body, "multicast") {
		t.Errorf("/flight: code=%d body=%q", code, body)
	}
	if code, _ := get("/flight?n=bogus"); code != http.StatusBadRequest {
		t.Errorf("/flight bad n: code=%d, want 400", code)
	}
	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: code=%d", code)
	}
	if code, body := get("/debug/trace"); code != http.StatusOK || !strings.Contains(body, "traceEvents") {
		t.Errorf("/debug/trace: code=%d body=%q", code, body)
	}

	noFlight := httptest.NewServer(NewDebugMux(func(w io.Writer) {}, nil, nil))
	defer noFlight.Close()
	for _, path := range []string{"/flight", "/debug/trace"} {
		resp, err := http.Get(noFlight.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck // test shim
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without source: code=%d, want 404", path, resp.StatusCode)
		}
	}
}

func TestLoggerHelpers(t *testing.T) {
	var sb strings.Builder
	l := Scoped(NewLogger(&sb, slog.LevelInfo), "testcomp")
	l.Debug("hidden")
	l.Info("visible", "k", "v")
	Printf(l)("printf %d", 7)
	out := sb.String()
	if strings.Contains(out, "hidden") {
		t.Error("debug line leaked at info level")
	}
	for _, want := range []string{"component=testcomp", "visible", "k=v", "printf 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo, "warn": slog.LevelWarn,
		"warning": slog.LevelWarn, "Error": slog.LevelError, "": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
