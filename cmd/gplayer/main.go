// Command gplayer attaches a player to a gcopssd router.
//
// The player is positioned in an area of a uniform hierarchical map and
// subscribes per the paper's visibility rules (its own area plus the
// airspace leaves of its ancestors). Stdin lines are published as updates;
// received updates are printed.
//
//	gplayer -name soldier7 -router localhost:7002 -area /1/2
//
// Commands on stdin:
//
//	<text>            publish <text> to the current position
//	/move <area>      relocate (resubscribes per the movement rules)
//	/quit             exit
//
// With -debug, the client's counters (sent/received packets, faultnet
// decisions) are exposed at /metrics alongside /debug/pprof/*.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"github.com/icn-gaming/gcopss/internal/broker"
	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/faultnet"
	"github.com/icn-gaming/gcopss/internal/flowctl"
	"github.com/icn-gaming/gcopss/internal/gamemap"
	"github.com/icn-gaming/gcopss/internal/obs"
	"github.com/icn-gaming/gcopss/internal/transport"
	"github.com/icn-gaming/gcopss/internal/wire"
)

// fetchMgr routes incoming Data packets to in-progress snapshot downloads.
type fetchMgr struct {
	// mu serializes the stdin loop (begin), the receive loop (handleData)
	// and the retry ticker (tick).
	mu sync.Mutex
	// fetches is the set of in-progress QR downloads.
	//
	//gcopss:guardedby mu
	fetches []*broker.QRFetch
	client  *transport.Client
}

// begin starts QR downloads for the given leaves.
func (m *fetchMgr) begin(leaves []cd.CD) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, leaf := range leaves {
		f := broker.NewFetch(leaf, flowctl.WithWindow(1, 15, 32))
		m.fetches = append(m.fetches, f)
		for _, pkt := range f.StartAt(time.Now()) {
			if err := m.client.Send(pkt); err != nil {
				return err
			}
		}
	}
	return nil
}

// handleData feeds a Data packet to the active fetches; it reports the
// number of objects received by fetches that just completed.
func (m *fetchMgr) handleData(pkt *wire.Packet) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	completed := 0
	var still []*broker.QRFetch
	for _, f := range m.fetches {
		follow, done := f.HandleDataAt(time.Now(), pkt)
		for _, out := range follow {
			m.client.Send(out) //lint:allow errcheckedfaces connection errors surface on Receive
		}
		if done {
			completed += f.Received()
		} else if !f.Failed() {
			still = append(still, f)
		}
	}
	m.fetches = still
	return completed
}

// tick drives the retry timers of the active fetches; failed downloads are
// dropped (the player can /move again to retry from scratch).
func (m *fetchMgr) tick(now time.Time, lg *slog.Logger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var still []*broker.QRFetch
	for _, f := range m.fetches {
		for _, out := range f.Tick(now) {
			m.client.Send(out) //lint:allow errcheckedfaces connection errors surface on Receive
		}
		if f.Failed() {
			lg.Warn("snapshot download failed", "received", f.Received())
			continue
		}
		if !f.Done() {
			still = append(still, f)
		}
	}
	m.fetches = still
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gplayer:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name     = flag.String("name", "player1", "player name")
		router   = flag.String("router", "localhost:7000", "router address")
		areaStr  = flag.String("area", "/1/1", "starting area on the map")
		regions   = flag.Int("regions", 5, "map regions")
		zones     = flag.Int("zones", 5, "zones per region")
		logLevel  = flag.String("log-level", "info", "log level: debug, info, warn or error")
		faultSpec = flag.String("fault-spec", "", "inject uplink faults, e.g. 'loss=0.05' (empty = off)")
		faultSeed = flag.Int64("fault-seed", 1, "seed for the fault injector's randomness")
		debugAddr = flag.String("debug", "", "serve /metrics and /debug/pprof on this address (empty = off)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	lg := obs.Scoped(obs.NewLogger(os.Stderr, level), "gplayer").With("player", *name)

	m, err := gamemap.NewGrid(*regions, *zones)
	if err != nil {
		return err
	}
	areaCD, err := cd.Parse(normalizeArea(*areaStr))
	if err != nil {
		return fmt.Errorf("bad area %q: %w", *areaStr, err)
	}
	area, ok := m.Area(areaCD)
	if !ok {
		return fmt.Errorf("area %q not on the %dx%d map", *areaStr, *regions, *zones)
	}
	player := gamemap.NewPlayer(*name, area)

	client, err := transport.NewClient(*name, *router)
	if err != nil {
		return err
	}
	defer client.Close() //nolint:errcheck // shutdown path
	// The player's registry is counters-only (client send/receive counts,
	// faultnet decisions), so the debug scraper reads it without locking.
	reg := obs.NewRegistry()
	client.Instrument(reg)
	if *faultSpec != "" {
		spec, err := faultnet.ParseSpec(*faultSpec)
		if err != nil {
			return fmt.Errorf("bad -fault-spec: %w", err)
		}
		in := faultnet.New(spec, *faultSeed)
		in.SetEpoch(time.Now())
		in.Instrument(reg)
		client.SetFaults(in)
		lg.Info("fault injection armed", "spec", spec.String(), "seed", fmt.Sprint(*faultSeed))
	}
	if *debugAddr != "" {
		mux := obs.NewDebugMux(func(w io.Writer) {
			reg.WriteText(w) //nolint:errcheck // exposition write failure surfaces as a truncated scrape
		}, nil, nil)
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listen: %w", err)
		}
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				lg.Error("debug server", "err", err)
			}
		}()
		lg.Info("debug endpoint up", "addr", ln.Addr().String())
	}

	if err := client.Subscribe(player.SubscriptionCDs()...); err != nil {
		return err
	}
	lg.Info("joined", "area", fmt.Sprint(area.CD()), "subscriptions", fmt.Sprint(player.SubscriptionCDs()))

	mgr := &fetchMgr{client: client}
	go func() {
		for range time.Tick(100 * time.Millisecond) {
			mgr.tick(time.Now(), lg)
		}
	}()
	resubscribe := func() error { return client.Subscribe(player.SubscriptionCDs()...) }
	go receiveLoop(client, *name, mgr, resubscribe, lg)

	sc := bufio.NewScanner(os.Stdin)
	var seq uint64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "/quit":
			return nil
		case strings.HasPrefix(line, "/move "):
			destStr := normalizeArea(strings.TrimSpace(strings.TrimPrefix(line, "/move ")))
			destCD, err := cd.Parse(destStr)
			if err != nil {
				lg.Warn("bad area", "err", err)
				continue
			}
			dest, ok := m.Area(destCD)
			if !ok {
				lg.Warn("no such area", "area", destStr)
				continue
			}
			res, err := player.Move(dest)
			if err != nil {
				lg.Warn("move rejected", "err", err)
				continue
			}
			if len(res.Unsubscribe) > 0 {
				if err := client.Unsubscribe(res.Unsubscribe...); err != nil {
					return err
				}
			}
			if len(res.Subscribe) > 0 {
				if err := client.Subscribe(res.Subscribe...); err != nil {
					return err
				}
			}
			lg.Info("moved", "type", fmt.Sprint(res.Type), "subscribe", fmt.Sprint(res.Subscribe),
				"unsubscribe", fmt.Sprint(res.Unsubscribe), "snapshot_areas", len(res.Snapshots))
			if len(res.Snapshots) > 0 {
				// Download the unseen areas from whatever broker serves
				// /snapshot (objects arrive asynchronously; see the log).
				if err := mgr.begin(res.Snapshots); err != nil {
					return err
				}
			}
		default:
			seq++
			if err := client.Publish(player.PublishCD(), seq, []byte(line)); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

func normalizeArea(s string) string {
	if s == "/" {
		return ""
	}
	return s
}

func receiveLoop(client *transport.Client, self string, mgr *fetchMgr, resubscribe func() error, lg *slog.Logger) {
	for {
		pkt, err := client.Receive()
		if err != nil {
			lg.Warn("connection lost, reconnecting", "err", err)
			if err := client.Reconnect(nil); err != nil {
				lg.Info("reconnect gave up", "err", err)
				os.Exit(0)
			}
			// Subscriptions are face state on the router: re-issue them.
			if err := resubscribe(); err != nil {
				lg.Info("resubscribe failed", "err", err)
				os.Exit(0)
			}
			lg.Info("reconnected")
			continue
		}
		switch {
		case pkt.Type == wire.TypeData:
			if n := mgr.handleData(pkt); n > 0 {
				lg.Info("snapshot area downloaded", "changed_objects", n)
			}
		case pkt.Type == wire.TypeMulticast && pkt.Origin != self && pkt.Origin != core.FlushOrigin:
			latency := ""
			if pkt.SentAt != 0 {
				latency = fmt.Sprintf("%.2fms", float64(time.Now().UnixNano()-pkt.SentAt)/1e6)
			}
			if c, err := pkt.CD(); err == nil {
				lg.Info("update", "cd", fmt.Sprint(c), "from", pkt.Origin, "payload", string(pkt.Payload), "latency", latency)
			}
		}
	}
}
