// Package guarded exercises the guardedby analyzer: accesses to annotated
// fields without the named mutex held are flagged, lock-first accesses and
// the two lock-held escape hatches pass, and malformed annotations are
// themselves diagnostics.
package guarded

import (
	"sync"

	"statelib"
)

type counter struct {
	mu sync.Mutex
	// n is the guarded count.
	//
	//gcopss:guardedby mu
	n int
	// hits uses an RWMutex guard.
	//
	//gcopss:guardedby rw
	hits int

	rw sync.RWMutex
}

type bad struct {
	// x names a mutex that does not exist in this struct.
	//
	//gcopss:guardedby missing
	x int // want "missing is not a sync.Mutex/RWMutex field of bad"
	// y names a field that is not a mutex.
	//
	//gcopss:guardedby x
	y int // want "x is not a sync.Mutex/RWMutex field of bad"
	// z forgets the mutex name.
	//
	//gcopss:guardedby
	z int // want "needs the name of the guarding mutex field"
}

// inc locks first: clean.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// read uses the read lock: clean.
func (c *counter) read() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.hits
}

// race touches both fields without any lock.
func (c *counter) race() int {
	c.n++           // want "access to c.n without holding mu"
	return c.hits + // want "access to c.hits without holding rw"
		0
}

// wrongLock holds the wrong mutex for the field it touches.
func (c *counter) wrongLock() {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.n++ // want "access to c.n without holding mu"
}

// bumpLocked runs with the lock held by convention (name suffix): clean.
func (c *counter) bumpLocked() { c.n++ }

// bump is the annotated flavor of the same contract: clean.
//
//gcopss:locked mu
func (c *counter) bump() { c.n++ }

// bumpBoth is exempt only for mu; the rw-guarded field still needs its lock.
//
//gcopss:locked mu
func (c *counter) bumpBoth() {
	c.n++
	c.hits++ // want "access to c.hits without holding rw"
}

// newCounter shows constructors stay clean: composite-literal init is not a
// selector access.
func newCounter() *counter {
	return &counter{n: 1, hits: 2}
}

// useBox exercises the imported-struct fact: statelib.Box.Val is guarded by
// Mu per the fact exported when statelib was analyzed.
func useBox(b *statelib.Box) int {
	b.Val++ // want "access to b.Val without holding Mu"
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val
}

// useBoxLocked locks before touching: clean.
func useBoxLocked(b *statelib.Box) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Val
}

// waived carries a reasoned waiver: suppressed.
func waived(c *counter) int {
	return c.n //lint:allow guardedby read-only snapshot for logs, staleness is fine
}
