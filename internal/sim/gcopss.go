package sim

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/icn-gaming/gcopss/internal/cd"
	"github.com/icn-gaming/gcopss/internal/core"
	"github.com/icn-gaming/gcopss/internal/obs"
	"github.com/icn-gaming/gcopss/internal/stats"
	"github.com/icn-gaming/gcopss/internal/topo"
	"github.com/icn-gaming/gcopss/internal/trace"
)

// RPPlacement assigns one RP a node and a served prefix set.
type RPPlacement struct {
	Node     topo.NodeID
	Prefixes []cd.CD
}

// AutoBalance configures the automatic RP splitting of Section IV-B.
type AutoBalance struct {
	// QueueThreshold is the RP queue length (packets) that triggers a split.
	QueueThreshold int
	// Window is the sliding-window length for per-CD load attribution.
	Window int
	// MaxRPs bounds the RP population.
	MaxRPs int
	// CandidateNodes are where new RPs may be instantiated, used in order.
	CandidateNodes []topo.NodeID
	// MigrationMs is the control-plane delay before a split takes effect
	// (stage A+B of the handoff protocol).
	MigrationMs float64
	// Seed drives the random tie-breaking of the CD selection function.
	Seed int64
}

// GCOPSSConfig parameterizes a G-COPSS run.
type GCOPSSConfig struct {
	RPs     []RPPlacement
	Costs   Costs
	Balance *AutoBalance // nil disables auto-balancing
	// Obs, when non-nil, receives a "sim.rp_queue_depth" gauge family
	// (label "rp") tracking each RP's instantaneous FIFO depth as the
	// replay progresses.
	Obs *obs.Registry
}

// SplitEvent records one automatic RP split (Fig. 5c annotations).
type SplitEvent struct {
	AtMs        float64
	PacketIndex int
	NewRPNode   topo.NodeID
	Moved       []cd.CD
	RPCount     int
}

// Result aggregates one simulation run.
type Result struct {
	// Latency accumulates per-delivery latencies in ms (publisher excluded).
	Latency *stats.Stream
	// PerUpdateAvg/Min/Max are per-update latency aggregates in packet
	// order — the Fig. 5 series.
	PerUpdateAvg []float32
	PerUpdateMin []float32
	PerUpdateMax []float32
	// Bytes is the aggregate network load (packet bytes × links traversed).
	Bytes float64
	// Deliveries counts (update, receiver) pairs.
	Deliveries uint64
	// Splits records auto-balancing events.
	Splits []SplitEvent
	// MaxQueueLen is the largest queue (in packets) seen at any RP/server.
	MaxQueueLen int
	// FinalRPs is the RP count at the end of the run.
	FinalRPs int
	// RPQueues summarizes each RP's FIFO queue over the run, in RP order
	// (RPs created by auto-balancing splits appear after the initial set).
	RPQueues []RPQueueStat
	// LatencyP50Ms and LatencyP99Ms are delivery-latency quantiles
	// estimated from a log-bucket histogram fed every delivery (unlike
	// Latency, which is a bounded reservoir sample). NaN when the run had
	// no deliveries.
	LatencyP50Ms float64
	LatencyP99Ms float64

	// latCounts feeds the quantiles: per-bucket delivery counts over
	// latBounds (last slot is overflow). Plain integers, not an
	// obs.Histogram — the engines are single-threaded and call addLatency
	// once per delivery, where the histogram's three atomics would cost
	// more than the rest of the per-delivery arithmetic combined.
	latCounts []uint64
}

// latBounds is the shared bucket layout of the delivery-latency quantile
// accumulators, fixed at package init so latIndex works over an immutable
// slice.
var latBounds = obs.LatencyBucketsMs()

// latIndex returns the quantile bucket for lat: the index of the first
// bound >= lat, or len(latBounds) for overflow. The bounds double from
// latBounds[0], so the index is read off the binary exponent of
// lat/latBounds[0] instead of binary-searched — a search's comparisons are
// data-dependent and mispredict on real latency streams, which at one call
// per delivery (~10M per Fig. 5 run) is the dominant cost of quantile
// accounting. The one-step fix-up absorbs division rounding at bucket
// boundaries, keeping the result identical to the search.
func latIndex(lat float64) int {
	n := len(latBounds)
	if lat <= latBounds[0] {
		return 0
	}
	if lat > latBounds[n-1] {
		return n
	}
	bits := math.Float64bits(lat / latBounds[0])
	i := int(bits>>52&0x7ff) - 1023
	if bits&(1<<52-1) != 0 {
		i++
	}
	if i < 1 {
		i = 1
	} else if i >= n {
		i = n - 1
	}
	if lat > latBounds[i] {
		i++
	} else if lat <= latBounds[i-1] {
		i--
	}
	return i
}

// addLatency records one delivery latency into both the reservoir stream
// and the quantile buckets.
func (r *Result) addLatency(lat float64) {
	r.Latency.Add(lat)
	if r.latCounts == nil {
		r.latCounts = make([]uint64, len(latBounds)+1)
	}
	r.latCounts[latIndex(lat)]++
}

// finishLatency resolves the quantile fields; engines call it once before
// returning their Result. The local bucket counts are replayed into an
// obs.Histogram (one ObserveN per occupied bucket, each fed a value inside
// that bucket's bounds) so the quantile math lives in exactly one place.
func (r *Result) finishLatency() {
	if r.latCounts == nil {
		r.LatencyP50Ms = math.NaN()
		r.LatencyP99Ms = math.NaN()
		return
	}
	h := obs.NewHistogram(nil)
	for i, c := range r.latCounts {
		if c == 0 {
			continue
		}
		v := latBounds[len(latBounds)-1] * 2 // overflow bucket
		if i < len(latBounds) {
			v = latBounds[i]
			if i > 0 {
				v = (latBounds[i-1] + latBounds[i]) / 2
			}
		}
		h.ObserveN(v, c)
	}
	r.LatencyP50Ms = h.Quantile(0.5)
	r.LatencyP99Ms = h.Quantile(0.99)
}

// RPQueueStat is the per-RP queue summary of one run.
type RPQueueStat struct {
	// Name is the RP's name (/rp1, /rp2, ...).
	Name string
	// Node is the topology node hosting the RP.
	Node topo.NodeID
	// MaxDepth is the largest FIFO depth (packets) observed at this RP.
	MaxDepth int
	// MeanDepth is the mean FIFO depth over the updates this RP served.
	MeanDepth float64
	// Updates counts the updates routed through this RP.
	Updates uint64
}

// rpState is one simulated RP.
type rpState struct {
	node       topo.NodeID
	prefixes   []cd.CD
	lastDepart float64
	monitor    *core.LoadMonitor
	name       string

	maxDepth int
	depthSum float64
	updates  uint64
}

// Name implements Runner.
func (cfg GCOPSSConfig) Name() string { return "gcopss" }

// Validate implements Runner: the RP set must be non-empty, every RP must
// serve at least one prefix, the union of serving sets must be prefix-free,
// and the RP service time must be positive (it divides queue-depth math).
func (cfg GCOPSSConfig) Validate() error {
	if len(cfg.RPs) == 0 {
		return fmt.Errorf("no RPs configured")
	}
	var all []cd.CD
	for i, p := range cfg.RPs {
		if len(p.Prefixes) == 0 {
			return fmt.Errorf("RP %d serves no prefixes", i)
		}
		all = append(all, p.Prefixes...)
	}
	if err := cd.PrefixFree(all); err != nil {
		return fmt.Errorf("RP serving sets: %w", err)
	}
	if cfg.Costs.RPServiceMs <= 0 {
		return fmt.Errorf("RP service time %v ms must be positive", cfg.Costs.RPServiceMs)
	}
	return nil
}

// Run implements Runner: replay updates through the G-COPSS data path —
// publisher → edge → covering RP (FIFO queue, 3.3 ms service) → core-based
// multicast tree → subscribers.
func (cfg GCOPSSConfig) Run(env *Env, updates []trace.Update) (*Result, error) {
	if err := precheck(env, cfg); err != nil {
		return nil, err
	}
	rps := make([]*rpState, len(cfg.RPs))
	window := core.DefaultLoadWindow
	if cfg.Balance != nil && cfg.Balance.Window > 0 {
		window = cfg.Balance.Window
	}
	for i, p := range cfg.RPs {
		rps[i] = &rpState{
			node:     p.Node,
			prefixes: append([]cd.CD(nil), p.Prefixes...),
			monitor:  core.NewLoadMonitor(window),
			name:     fmt.Sprintf("/rp%d", i+1),
		}
	}

	var rnd *rand.Rand
	var candidates []topo.NodeID
	reservoirSeed := int64(1)
	if cfg.Balance != nil {
		rnd = rand.New(rand.NewSource(cfg.Balance.Seed))
		candidates = append(candidates, cfg.Balance.CandidateNodes...)
		reservoirSeed = cfg.Balance.Seed
	}

	var queueVec *obs.GaugeVec
	if cfg.Obs != nil {
		queueVec = cfg.Obs.GaugeVec("sim.rp_queue_depth", "rp")
	}

	pl := newPlanner(env, cfg.Costs)
	res := &Result{
		Latency:      stats.NewStreamSeeded(20000, reservoirSeed),
		PerUpdateAvg: make([]float32, 0, len(updates)),
		PerUpdateMin: make([]float32, 0, len(updates)),
		PerUpdateMax: make([]float32, 0, len(updates)),
	}

	type pendingSplit struct {
		atMs   float64
		source int
		node   topo.NodeID
		moved  []cd.CD
	}
	var pending *pendingSplit

	cover := func(c cd.CD) *rpState {
		for _, rp := range rps {
			if _, ok := cd.Cover(rp.prefixes, c); ok {
				return rp
			}
		}
		return nil
	}

	for idx, u := range updates {
		nowMs := float64(u.At) / float64(time.Millisecond)

		// Apply a matured split before routing this update.
		if pending != nil && nowMs >= pending.atMs {
			src := rps[pending.source]
			src.prefixes = subtract(src.prefixes, pending.moved)
			rps = append(rps, &rpState{
				node:     pending.node,
				prefixes: pending.moved,
				monitor:  core.NewLoadMonitor(window),
				name:     fmt.Sprintf("/rp%d", len(rps)+1),
			})
			pl.invalidateLeavesUnder(pending.moved)
			res.Splits = append(res.Splits, SplitEvent{
				AtMs:        pending.atMs,
				PacketIndex: idx,
				NewRPNode:   pending.node,
				Moved:       pending.moved,
				RPCount:     len(rps),
			})
			pending = nil
		}

		rp := cover(u.CD)
		if rp == nil {
			continue // unserved CD: dropped, as a real router would
		}
		upDelay, upHops := pl.upstream(u.Player, rp.node)
		arrive := nowMs + upDelay
		qlen := 0
		if arrive < rp.lastDepart {
			qlen = int((rp.lastDepart - arrive) / cfg.Costs.RPServiceMs)
			if qlen > res.MaxQueueLen {
				res.MaxQueueLen = qlen
			}
			// Auto-balance: queue above threshold triggers a split.
			if cfg.Balance != nil && pending == nil && qlen > cfg.Balance.QueueThreshold &&
				len(rps) < cfg.Balance.MaxRPs && len(rp.prefixes) > 1 && len(candidates) > 0 {
				_, moved := rp.monitor.SplitByLoad(rp.prefixes, rnd)
				if len(moved) > 0 {
					node := candidates[0]
					candidates = candidates[1:]
					srcIdx := 0
					for i := range rps {
						if rps[i] == rp {
							srcIdx = i
						}
					}
					pending = &pendingSplit{
						atMs:   arrive + cfg.Balance.MigrationMs,
						source: srcIdx,
						node:   node,
						moved:  moved,
					}
				}
			}
		}
		if qlen > rp.maxDepth {
			rp.maxDepth = qlen
		}
		rp.depthSum += float64(qlen)
		rp.updates++
		if queueVec != nil {
			queueVec.With(rp.name).Set(int64(qlen))
		}
		depart := arrive
		if rp.lastDepart > depart {
			depart = rp.lastDepart
		}
		depart += cfg.Costs.RPServiceMs
		rp.lastDepart = depart
		rp.monitor.Record(u.CD)

		plan := pl.plan(u.CD, rp.node)
		pktBytes := float64(u.Size + cfg.Costs.PacketOverhead)
		res.Bytes += pktBytes * float64(upHops+plan.treeEdges)

		var sum, minL, maxL float64
		n := 0
		for i, sub := range plan.players {
			if sub == u.Player {
				continue
			}
			lat := depart + plan.delays[i] - nowMs
			res.addLatency(lat)
			res.Deliveries++
			sum += lat
			if n == 0 || lat < minL {
				minL = lat
			}
			if lat > maxL {
				maxL = lat
			}
			n++
		}
		if n > 0 {
			res.PerUpdateAvg = append(res.PerUpdateAvg, float32(sum/float64(n)))
			res.PerUpdateMin = append(res.PerUpdateMin, float32(minL))
			res.PerUpdateMax = append(res.PerUpdateMax, float32(maxL))
		} else {
			res.PerUpdateAvg = append(res.PerUpdateAvg, 0)
			res.PerUpdateMin = append(res.PerUpdateMin, 0)
			res.PerUpdateMax = append(res.PerUpdateMax, 0)
		}
	}
	res.FinalRPs = len(rps)
	for _, rp := range rps {
		st := RPQueueStat{Name: rp.name, Node: rp.node, MaxDepth: rp.maxDepth, Updates: rp.updates}
		if rp.updates > 0 {
			st.MeanDepth = rp.depthSum / float64(rp.updates)
		}
		res.RPQueues = append(res.RPQueues, st)
	}
	res.finishLatency()
	return res, nil
}

// RunGCOPSS is a convenience wrapper over GCOPSSConfig.Run kept for
// call-site readability; prefer the Runner interface in new drivers.
func RunGCOPSS(env *Env, updates []trace.Update, cfg GCOPSSConfig) (*Result, error) {
	return cfg.Run(env, updates)
}

// subtract removes the moved prefixes from a serving set.
func subtract(set, moved []cd.CD) []cd.CD {
	rm := cd.NewSet(moved...)
	var out []cd.CD
	for _, p := range set {
		if !rm.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// DefaultRPPlacement spreads the world partition of the game map over n RPs
// hosted on the first n core routers (round-robin prefix assignment), the
// initial configuration of Table I.
func DefaultRPPlacement(env *Env, n int) []RPPlacement {
	prefixes := worldPartition(env)
	out := make([]RPPlacement, n)
	for i := range out {
		out[i].Node = env.Cores[i%len(env.Cores)]
	}
	for i, p := range prefixes {
		out[i%n].Prefixes = append(out[i%n].Prefixes, p)
	}
	return out
}

// worldPartition returns the canonical prefix-free partition of the game
// map: the world airspace leaf plus one prefix per region.
func worldPartition(env *Env) []cd.CD {
	prefixes := []cd.CD{cd.MustNew("")}
	for _, r := range env.Game.Map.RegionNames() {
		prefixes = append(prefixes, cd.MustNew(r))
	}
	return prefixes
}
